//! Unit-disk network topology: neighbor tables and spatial queries.
//!
//! A [`Topology`] is built once from a node list and a radio range. It
//! provides the neighbor tables that every node in the paper maintains "via
//! periodic exchange of beacon messages" (§2), plus the spatial queries the
//! storage schemes need (nearest node to a location, connectivity checks).
//!
//! Neighbor computation uses a spatial hash bucketed at the radio range, so
//! building is `O(n · expected-degree)` rather than `O(n²)`.

use crate::error::NetsimError;
use crate::geometry::{Point, Rect};
use crate::node::{Node, NodeId};
use std::collections::HashMap;

/// An immutable unit-disk graph over a set of deployed nodes.
///
/// # Examples
///
/// ```
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
/// use pool_netsim::topology::Topology;
///
/// let nodes = Deployment::new(Rect::square(100.0), 60, Placement::Uniform, 1).nodes();
/// let topo = Topology::build(nodes, 25.0).unwrap();
/// let some_node = topo.nodes()[0].id;
/// for &nb in topo.neighbors(some_node) {
///     assert!(topo.distance(some_node, nb) <= 25.0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    radio_range: f64,
    neighbors: Vec<Vec<NodeId>>,
    buckets: HashMap<(i64, i64), Vec<NodeId>>,
    bucket_size: f64,
    bounds: Rect,
    /// Liveness flags: failed nodes keep their id and position (so
    /// bookkeeping stays dense) but vanish from neighbor tables, spatial
    /// queries, and connectivity.
    alive: Vec<bool>,
}

impl Topology {
    /// Builds the unit-disk topology for `nodes` with the given radio range.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::EmptyDeployment`] if `nodes` is empty and
    /// [`NetsimError::InvalidRadioRange`] if the range is not positive and
    /// finite.
    pub fn build(nodes: Vec<Node>, radio_range: f64) -> Result<Self, NetsimError> {
        if nodes.is_empty() {
            return Err(NetsimError::EmptyDeployment);
        }
        if !(radio_range.is_finite() && radio_range > 0.0) {
            return Err(NetsimError::InvalidRadioRange { range: radio_range });
        }
        let bucket_size = radio_range;
        let mut buckets: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        let mut min = nodes[0].position;
        let mut max = nodes[0].position;
        for node in &nodes {
            let key = bucket_key(node.position, bucket_size);
            buckets.entry(key).or_default().push(node.id);
            min.x = min.x.min(node.position.x);
            min.y = min.y.min(node.position.y);
            max.x = max.x.max(node.position.x);
            max.y = max.y.max(node.position.y);
        }
        let mut neighbors = vec![Vec::new(); nodes.len()];
        let range_sq = radio_range * radio_range;
        for node in &nodes {
            let (bx, by) = bucket_key(node.position, bucket_size);
            let list = &mut neighbors[node.id.index()];
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(ids) = buckets.get(&(bx + dx, by + dy)) {
                        for &other in ids {
                            if other != node.id
                                && nodes[other.index()].position.distance_sq(node.position)
                                    <= range_sq
                            {
                                list.push(other);
                            }
                        }
                    }
                }
            }
            // Deterministic neighbor order regardless of hash iteration.
            list.sort_unstable();
        }
        let alive = vec![true; nodes.len()];
        Ok(Topology {
            nodes,
            radio_range,
            neighbors,
            buckets,
            bucket_size,
            bounds: Rect::new(min, max),
            alive,
        })
    }

    /// A copy of this topology with `dead` nodes failed: they keep their
    /// ids and positions but are removed from every neighbor table, the
    /// spatial index, and connectivity.
    ///
    /// # Panics
    ///
    /// Panics if a dead id is out of range.
    pub fn without_nodes(&self, dead: &[NodeId]) -> Topology {
        let mut topo = self.clone();
        for &id in dead {
            topo.alive[id.index()] = false;
        }
        // Rebuild neighbor tables and buckets over live nodes only.
        for list in &mut topo.neighbors {
            list.retain(|n| topo.alive[n.index()]);
        }
        for (i, alive) in topo.alive.iter().enumerate() {
            if !alive {
                topo.neighbors[i].clear();
            }
        }
        for ids in topo.buckets.values_mut() {
            ids.retain(|n| topo.alive[n.index()]);
        }
        topo.buckets.retain(|_, ids| !ids.is_empty());
        topo
    }

    /// A copy of this topology with one freshly deployed node at
    /// `position`, returned along with its newly assigned id (always
    /// `NodeId(self.len())`, keeping ids dense so per-node bookkeeping can
    /// grow by appending).
    ///
    /// The joiner's neighbor table is computed against *live* nodes only,
    /// and it is spliced into each neighbor's sorted table, the spatial
    /// hash, and the bounding box. The original topology is untouched.
    pub fn with_node(&self, position: Point) -> (Topology, NodeId) {
        let mut topo = self.clone();
        let id = NodeId(topo.nodes.len() as u32);
        let range_sq = topo.radio_range * topo.radio_range;
        let (bx, by) = bucket_key(position, topo.bucket_size);
        let mut list = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = topo.buckets.get(&(bx + dx, by + dy)) {
                    for &other in ids {
                        if topo.nodes[other.index()].position.distance_sq(position) <= range_sq {
                            list.push(other);
                        }
                    }
                }
            }
        }
        list.sort_unstable();
        for &nb in &list {
            let table = &mut topo.neighbors[nb.index()];
            if let Err(pos) = table.binary_search(&id) {
                table.insert(pos, id);
            }
        }
        topo.nodes.push(Node::new(id, position));
        topo.neighbors.push(list);
        topo.alive.push(true);
        topo.buckets.entry((bx, by)).or_default().push(id);
        let min = Point::new(topo.bounds.min.x.min(position.x), topo.bounds.min.y.min(position.y));
        let max = Point::new(topo.bounds.max.x.max(position.x), topo.bounds.max.y.max(position.y));
        topo.bounds = Rect::new(min, max);
        (topo, id)
    }

    /// A copy of this topology with node `id` relocated to `new_position`
    /// (waypoint mobility): its old radio links are torn down and its
    /// neighbor table, every affected neighbor's table, and the spatial
    /// hash are recomputed at the new position. The original topology is
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or dead — a failed node cannot move.
    pub fn with_moved_node(&self, id: NodeId, new_position: Point) -> Topology {
        assert!(self.alive[id.index()], "cannot move dead node {id}");
        let mut topo = self.clone();
        // Tear down the old links and spatial-hash entry.
        let old_key = bucket_key(topo.nodes[id.index()].position, topo.bucket_size);
        if let Some(ids) = topo.buckets.get_mut(&old_key) {
            ids.retain(|&n| n != id);
            if ids.is_empty() {
                topo.buckets.remove(&old_key);
            }
        }
        for nb in std::mem::take(&mut topo.neighbors[id.index()]) {
            let table = &mut topo.neighbors[nb.index()];
            if let Ok(pos) = table.binary_search(&id) {
                table.remove(pos);
            }
        }
        // Re-deploy at the new position.
        topo.nodes[id.index()].position = new_position;
        let range_sq = topo.radio_range * topo.radio_range;
        let (bx, by) = bucket_key(new_position, topo.bucket_size);
        let mut list = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = topo.buckets.get(&(bx + dx, by + dy)) {
                    for &other in ids {
                        if other != id
                            && topo.nodes[other.index()].position.distance_sq(new_position)
                                <= range_sq
                        {
                            list.push(other);
                        }
                    }
                }
            }
        }
        list.sort_unstable();
        for &nb in &list {
            let table = &mut topo.neighbors[nb.index()];
            if let Err(pos) = table.binary_search(&id) {
                table.insert(pos, id);
            }
        }
        topo.neighbors[id.index()] = list;
        topo.buckets.entry((bx, by)).or_default().push(id);
        let min = Point::new(
            topo.bounds.min.x.min(new_position.x),
            topo.bounds.min.y.min(new_position.y),
        );
        let max = Point::new(
            topo.bounds.max.x.max(new_position.x),
            topo.bounds.max.y.max(new_position.y),
        );
        topo.bounds = Rect::new(min, max);
        topo
    }

    /// Whether node `id` is alive (has not been failed).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// All deployed nodes, indexed by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes (never true for a built topology).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The radio range in meters.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Bounding box of the deployed node positions.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Position of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id.index()].position
    }

    /// The neighbor table of node `id` (every node within radio range),
    /// sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Whether `a` and `b` can communicate directly.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// The node whose position is closest to `target` (ties broken by lower
    /// id). Uses the spatial hash with an expanding ring search.
    pub fn nearest_node(&self, target: Point) -> NodeId {
        let (bx, by) = bucket_key(target, self.bucket_size);
        let mut best: Option<(f64, NodeId)> = None;
        let mut ring = 0i64;
        loop {
            let mut any_bucket = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    // Only the ring boundary is new.
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    if let Some(ids) = self.buckets.get(&(bx + dx, by + dy)) {
                        any_bucket = true;
                        for &id in ids {
                            let d = self.position(id).distance_sq(target);
                            let better = match best {
                                None => true,
                                Some((bd, bid)) => d < bd || (d == bd && id < bid),
                            };
                            if better {
                                best = Some((d, id));
                            }
                        }
                    }
                }
            }
            // Once a candidate is found, we must still scan one extra ring:
            // a closer node can sit in an adjacent bucket.
            if let Some((bd, id)) = best {
                let safe_radius = (ring as f64) * self.bucket_size;
                if bd.sqrt() <= safe_radius || ring > self.max_ring() {
                    return id;
                }
            }
            if !any_bucket && ring > self.max_ring() {
                // All buckets exhausted: return the best seen (the topology
                // is non-empty, so by now best is set).
                if let Some((_, id)) = best {
                    return id;
                }
            }
            ring += 1;
        }
    }

    /// All nodes within `radius` of `target`.
    pub fn nodes_within(&self, target: Point, radius: f64) -> Vec<NodeId> {
        let r_buckets = (radius / self.bucket_size).ceil() as i64;
        let (bx, by) = bucket_key(target, self.bucket_size);
        let rsq = radius * radius;
        let mut out = Vec::new();
        for dx in -r_buckets..=r_buckets {
            for dy in -r_buckets..=r_buckets {
                if let Some(ids) = self.buckets.get(&(bx + dx, by + dy)) {
                    for &id in ids {
                        if self.position(id).distance_sq(target) <= rsq {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.nodes.len() as f64
    }

    /// Size of the largest connected component of *live* nodes (BFS over
    /// the unit-disk graph).
    pub fn largest_component(&self) -> usize {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut best = 0;
        let mut queue = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            seen[start] = true;
            queue.push(start);
            let mut size = 0;
            while let Some(u) = queue.pop() {
                size += 1;
                for nb in &self.neighbors[u] {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            best = best.max(size);
        }
        best
    }

    /// The members of the largest connected component of live nodes, in
    /// ascending id order (ties between equal-sized components break toward
    /// the one containing the smallest node id, so the result is
    /// deterministic).
    pub fn largest_component_members(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut best: Vec<NodeId> = Vec::new();
        let mut queue = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            seen[start] = true;
            queue.push(start);
            let mut members = Vec::new();
            while let Some(u) = queue.pop() {
                members.push(self.nodes[u].id);
                for nb in &self.neighbors[u] {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            if members.len() > best.len() {
                best = members;
            }
        }
        best.sort_unstable();
        best
    }

    /// Whether the live unit-disk graph is connected.
    pub fn is_connected(&self) -> bool {
        self.largest_component() == self.alive_count()
    }

    /// Errors unless the network is connected. Routing guarantees (GPSR
    /// delivery, splitter reachability) require connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::Disconnected`] with component statistics.
    pub fn require_connected(&self) -> Result<(), NetsimError> {
        let largest = self.largest_component();
        let alive = self.alive_count();
        if largest == alive {
            Ok(())
        } else {
            Err(NetsimError::Disconnected { largest_component: largest, total: alive })
        }
    }

    fn max_ring(&self) -> i64 {
        let w = (self.bounds.width() / self.bucket_size).ceil() as i64;
        let h = (self.bounds.height() / self.bucket_size).ceil() as i64;
        w.max(h) + 2
    }
}

fn bucket_key(p: Point, size: f64) -> (i64, i64) {
    ((p.x / size).floor() as i64, (p.y / size).floor() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample_topology(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn neighbors_match_brute_force() {
        let topo = sample_topology(80, 100.0, 30.0, 9);
        for a in topo.nodes() {
            let brute: Vec<NodeId> = topo
                .nodes()
                .iter()
                .filter(|b| b.id != a.id && b.position.distance(a.position) <= 30.0)
                .map(|b| b.id)
                .collect();
            assert_eq!(topo.neighbors(a.id), brute.as_slice(), "node {}", a.id);
        }
    }

    #[test]
    fn are_neighbors_is_symmetric() {
        let topo = sample_topology(60, 80.0, 25.0, 2);
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(topo.are_neighbors(a.id, b.id), topo.are_neighbors(b.id, a.id));
            }
        }
    }

    #[test]
    fn nearest_node_matches_brute_force() {
        let topo = sample_topology(70, 90.0, 20.0, 4);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(45.0, 45.0),
            Point::new(89.9, 0.1),
            Point::new(200.0, 200.0), // outside the field
            Point::new(-50.0, 45.0),
        ];
        for p in probes {
            let got = topo.nearest_node(p);
            let want = topo
                .nodes()
                .iter()
                .min_by(|a, b| {
                    a.position
                        .distance_sq(p)
                        .partial_cmp(&b.position.distance_sq(p))
                        .unwrap()
                        .then(a.id.cmp(&b.id))
                })
                .unwrap()
                .id;
            assert_eq!(
                topo.position(got).distance(p),
                topo.position(want).distance(p),
                "probe {p}"
            );
        }
    }

    #[test]
    fn nodes_within_matches_brute_force() {
        let topo = sample_topology(60, 70.0, 15.0, 6);
        let p = Point::new(35.0, 35.0);
        let got = topo.nodes_within(p, 22.0);
        let want: Vec<NodeId> =
            topo.nodes().iter().filter(|n| n.position.distance(p) <= 22.0).map(|n| n.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_node_topology() {
        let topo = Topology::build(vec![Node::new(NodeId(0), Point::new(1.0, 1.0))], 10.0).unwrap();
        assert_eq!(topo.len(), 1);
        assert!(topo.neighbors(NodeId(0)).is_empty());
        assert_eq!(topo.nearest_node(Point::new(99.0, 99.0)), NodeId(0));
        assert!(topo.is_connected());
    }

    #[test]
    fn connectivity_detects_split_network() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(1.0, 0.0)),
            Node::new(NodeId(2), Point::new(100.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(!topo.is_connected());
        assert_eq!(topo.largest_component(), 2);
        assert_eq!(topo.largest_component_members(), vec![NodeId(0), NodeId(1)]);
        assert!(matches!(
            topo.require_connected(),
            Err(NetsimError::Disconnected { largest_component: 2, total: 3 })
        ));
        // Killing a member of the majority component flips the balance.
        let flipped = topo.without_nodes(&[NodeId(1)]);
        assert_eq!(flipped.largest_component_members().len(), 1);
    }

    #[test]
    fn dense_network_is_connected() {
        let topo = sample_topology(120, 100.0, 30.0, 12);
        assert!(topo.is_connected());
        assert!(topo.require_connected().is_ok());
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(matches!(Topology::build(vec![], 10.0), Err(NetsimError::EmptyDeployment)));
        let nodes = vec![Node::new(NodeId(0), Point::new(0.0, 0.0))];
        assert!(matches!(
            Topology::build(nodes, f64::NAN),
            Err(NetsimError::InvalidRadioRange { .. })
        ));
    }

    #[test]
    fn mean_degree_reasonable_for_paper_density() {
        let d = Deployment::paper_setting(300, 40.0, 20.0, 77).unwrap();
        let topo = Topology::build(d.nodes(), 40.0).unwrap();
        let deg = topo.mean_degree();
        assert!(deg > 14.0 && deg < 22.0, "mean degree {deg}");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn failed_nodes_leave_neighbor_tables() {
        let topo = sample(60, 80.0, 30.0, 2);
        let dead = NodeId(10);
        let failed = topo.without_nodes(&[dead]);
        assert!(!failed.is_alive(dead));
        assert_eq!(failed.alive_count(), 59);
        assert!(failed.neighbors(dead).is_empty());
        for node in failed.nodes() {
            assert!(!failed.neighbors(node.id).contains(&dead));
        }
        // The original topology is untouched.
        assert!(topo.is_alive(dead));
        assert_eq!(topo.alive_count(), 60);
    }

    #[test]
    fn nearest_node_skips_the_dead() {
        let topo = sample(50, 70.0, 25.0, 3);
        let probe = topo.position(NodeId(7));
        assert_eq!(topo.nearest_node(probe), NodeId(7));
        let failed = topo.without_nodes(&[NodeId(7)]);
        let nearest = failed.nearest_node(probe);
        assert_ne!(nearest, NodeId(7));
        assert!(failed.is_alive(nearest));
    }

    #[test]
    fn connectivity_over_live_nodes_only() {
        // Three nodes in a line; killing the middle disconnects the ends,
        // killing an end leaves the rest connected.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(4.0, 0.0)),
            Node::new(NodeId(2), Point::new(8.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(topo.is_connected());
        assert!(!topo.without_nodes(&[NodeId(1)]).is_connected());
        assert!(topo.without_nodes(&[NodeId(0)]).is_connected());
    }

    #[test]
    fn positions_remain_queryable_after_failure() {
        let topo = sample(30, 50.0, 25.0, 4);
        let failed = topo.without_nodes(&[NodeId(3)]);
        assert_eq!(failed.position(NodeId(3)), topo.position(NodeId(3)));
    }

    #[test]
    fn cascading_failures_accumulate() {
        let topo = sample(40, 60.0, 30.0, 5);
        let once = topo.without_nodes(&[NodeId(0), NodeId(1)]);
        let twice = once.without_nodes(&[NodeId(2)]);
        assert_eq!(twice.alive_count(), 37);
        for id in [0u32, 1, 2] {
            assert!(!twice.is_alive(NodeId(id)));
        }
    }
}

#[cfg(test)]
mod mutation_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    /// Every live node's neighbor table equals the brute-force unit-disk
    /// neighborhood over live nodes, in sorted order.
    fn assert_tables_consistent(topo: &Topology) {
        let range = topo.radio_range();
        for a in topo.nodes() {
            if !topo.is_alive(a.id) {
                assert!(topo.neighbors(a.id).is_empty());
                continue;
            }
            let brute: Vec<NodeId> = topo
                .nodes()
                .iter()
                .filter(|b| {
                    b.id != a.id
                        && topo.is_alive(b.id)
                        && b.position.distance(topo.position(a.id)) <= range
                })
                .map(|b| b.id)
                .collect();
            assert_eq!(topo.neighbors(a.id), brute.as_slice(), "node {}", a.id);
        }
    }

    #[test]
    fn joined_node_gets_dense_id_and_symmetric_links() {
        let topo = sample(60, 80.0, 25.0, 11);
        let p = Point::new(40.0, 40.0);
        let (grown, id) = topo.with_node(p);
        assert_eq!(id, NodeId(60));
        assert_eq!(grown.len(), 61);
        assert!(grown.is_alive(id));
        assert_eq!(grown.position(id), p);
        assert_tables_consistent(&grown);
        assert!(!grown.neighbors(id).is_empty(), "a mid-field joiner must find neighbors");
        // The original is untouched.
        assert_eq!(topo.len(), 60);
        assert_tables_consistent(&topo);
    }

    #[test]
    fn joined_node_is_spatially_indexed() {
        let topo = sample(50, 70.0, 25.0, 12);
        let p = Point::new(200.0, 200.0); // far outside the field
        let (grown, id) = topo.with_node(p);
        assert_eq!(grown.nearest_node(Point::new(199.0, 199.0)), id);
        assert!(grown.bounds().contains(p));
        assert!(grown.neighbors(id).is_empty(), "an isolated joiner has no links");
        assert!(!grown.is_connected());
    }

    #[test]
    fn join_after_failure_ignores_the_dead() {
        let topo = sample(60, 80.0, 25.0, 13);
        let dead = NodeId(17);
        let failed = topo.without_nodes(&[dead]);
        let (grown, id) = failed.with_node(topo.position(dead));
        assert!(!grown.neighbors(id).contains(&dead));
        assert_tables_consistent(&grown);
    }

    #[test]
    fn moved_node_reconnects_at_its_destination() {
        let topo = sample(70, 90.0, 25.0, 14);
        let mover = NodeId(5);
        let dest = Point::new(85.0, 85.0);
        let moved = topo.with_moved_node(mover, dest);
        assert_eq!(moved.position(mover), dest);
        assert_tables_consistent(&moved);
        // Old links that are now out of range are gone, in both directions.
        for nb in topo.neighbors(mover) {
            if moved.distance(mover, *nb) > moved.radio_range() {
                assert!(!moved.are_neighbors(mover, *nb));
                assert!(!moved.are_neighbors(*nb, mover));
            }
        }
        // The spatial hash follows the move.
        assert_eq!(moved.nearest_node(dest), mover);
        // The original is untouched.
        assert_eq!(topo.position(mover), topo.nodes()[mover.index()].position);
        assert_tables_consistent(&topo);
    }

    #[test]
    fn move_is_reversible() {
        let topo = sample(40, 60.0, 20.0, 15);
        let mover = NodeId(9);
        let home = topo.position(mover);
        let away = topo.with_moved_node(mover, Point::new(-10.0, -10.0));
        let back = away.with_moved_node(mover, home);
        for node in topo.nodes() {
            assert_eq!(back.neighbors(node.id), topo.neighbors(node.id), "node {}", node.id);
        }
    }

    #[test]
    #[should_panic(expected = "cannot move dead node")]
    fn moving_a_dead_node_panics() {
        let topo = sample(30, 50.0, 20.0, 16);
        let failed = topo.without_nodes(&[NodeId(3)]);
        let _ = failed.with_moved_node(NodeId(3), Point::new(1.0, 1.0));
    }

    #[test]
    fn churn_interleaving_keeps_tables_consistent() {
        let mut topo = sample(50, 70.0, 22.0, 17);
        let steps: Vec<(u32, f64, f64)> =
            (0..12).map(|i| (i * 3 % 50, f64::from(i * 7 % 60), f64::from(i * 11 % 60))).collect();
        for (i, &(raw, x, y)) in steps.iter().enumerate() {
            match i % 3 {
                0 => topo = topo.with_node(Point::new(x, y)).0,
                1 => {
                    let id = NodeId(raw);
                    if topo.is_alive(id) {
                        topo = topo.with_moved_node(id, Point::new(x, y));
                    }
                }
                _ => topo = topo.without_nodes(&[NodeId(raw)]),
            }
            assert_tables_consistent(&topo);
        }
    }
}
