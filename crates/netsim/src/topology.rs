//! Unit-disk network topology: neighbor tables and spatial queries.
//!
//! A [`Topology`] is built once from a node list and a radio range. It
//! provides the neighbor tables that every node in the paper maintains "via
//! periodic exchange of beacon messages" (§2), plus the spatial queries the
//! storage schemes need (nearest node to a location, connectivity checks).
//!
//! Neighbor computation uses a spatial hash bucketed at the radio range, so
//! building is `O(n · expected-degree)` rather than `O(n²)`.
//!
//! # Layout
//!
//! Both the adjacency and the spatial hash are stored as flat CSR
//! (compressed-sparse-row) arenas: one `offsets` array indexing into one
//! contiguous payload array. Per-row `Vec`s would cost an allocation and a
//! pointer chase per node, which dominates once deployments reach 10⁵
//! nodes. Positions and liveness flags live in parallel arrays indexed by
//! the dense [`NodeId`].
//!
//! # Mutation
//!
//! Churn does not rebuild the arenas. The in-place mutators
//! ([`Topology::fail_nodes`], [`Topology::add_node`],
//! [`Topology::move_node`]) copy only the touched rows into a small
//! *overlay* (`O(degree)` per event), which [`Topology::compact`] folds
//! back into the flat arenas — callers compact once per churn epoch. The
//! persistent copy-on-write API (`without_nodes` / `with_node` /
//! `with_moved_node`) survives as clone-then-mutate wrappers, where a clone
//! is now a handful of flat `memcpy`s instead of `n` per-row allocations.
//!
//! # Determinism
//!
//! Every spatial-hash bucket holds its member ids in ascending order — at
//! build time, after every mutation, and after every compaction. Bucket
//! order is not observable through the public API (ties are broken by id,
//! range queries sort their output), but pinning it means a future change
//! to neighbor discovery cannot silently reorder results.

use crate::error::NetsimError;
use crate::geometry::{Point, Rect};
use crate::node::{Node, NodeId};
use std::collections::HashMap;

/// Sentinel in `row_patch`: the row lives in the flat CSR arena.
const UNPATCHED: u32 = u32::MAX;

/// Flat spatial hash: a dense `w × h` grid of cells in CSR form, plus a
/// `patched` overlay for cells touched since the last compaction (and for
/// cells outside the dense extent). A lookup consults the overlay first.
///
/// Degenerate deployments whose bounding box is far larger than the node
/// count (two clusters a continent apart) would make the dense grid
/// quadratic in wasted cells; `rebuild` detects that and keeps every
/// occupied cell in the overlay map instead.
#[derive(Debug, Clone, Default)]
struct SpatialGrid {
    min_bx: i64,
    min_by: i64,
    w: i64,
    h: i64,
    offsets: Vec<u32>,
    ids: Vec<NodeId>,
    patched: HashMap<(i64, i64), Vec<NodeId>>,
}

impl SpatialGrid {
    fn cell_index(&self, key: (i64, i64)) -> Option<usize> {
        let cx = key.0 - self.min_bx;
        let cy = key.1 - self.min_by;
        if cx < 0 || cy < 0 || cx >= self.w || cy >= self.h {
            return None;
        }
        Some((cy * self.w + cx) as usize)
    }

    /// Member ids of the bucket at `key`, ascending; empty if unoccupied.
    fn bucket(&self, key: (i64, i64)) -> &[NodeId] {
        if let Some(ids) = self.patched.get(&key) {
            return ids;
        }
        match self.cell_index(key) {
            Some(i) => &self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            None => &[],
        }
    }

    /// The bucket at `key` as a mutable overlay row (copied out of the
    /// dense grid on first touch). Callers must keep it sorted.
    fn bucket_mut(&mut self, key: (i64, i64)) -> &mut Vec<NodeId> {
        if !self.patched.contains_key(&key) {
            let current: Vec<NodeId> = match self.cell_index(key) {
                Some(i) => {
                    self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize].to_vec()
                }
                None => Vec::new(),
            };
            self.patched.insert(key, current);
        }
        self.patched.get_mut(&key).expect("just inserted")
    }

    /// Rebuilds the dense grid from the live nodes (visited in id order, so
    /// every cell comes out id-sorted) and clears the overlay.
    fn rebuild(&mut self, nodes: &[Node], alive: &[bool], bucket_size: f64) {
        self.patched.clear();
        self.offsets.clear();
        self.ids.clear();
        let mut keys = nodes
            .iter()
            .filter(|n| alive[n.id.index()])
            .map(|n| bucket_key(n.position, bucket_size));
        let Some(first) = keys.next() else {
            // Nothing alive: an empty grid answers every lookup with an
            // empty bucket.
            (self.min_bx, self.min_by, self.w, self.h) = (0, 0, 0, 0);
            return;
        };
        let (mut min_bx, mut min_by) = first;
        let (mut max_bx, mut max_by) = first;
        for (bx, by) in keys {
            min_bx = min_bx.min(bx);
            min_by = min_by.min(by);
            max_bx = max_bx.max(bx);
            max_by = max_by.max(by);
        }
        let w = max_bx - min_bx + 1;
        let h = max_by - min_by + 1;
        let cells = (w as i128) * (h as i128);
        let live = alive.iter().filter(|&&a| a).count();
        if cells > (4 * live + 64) as i128 {
            // Pathologically sparse extent: keep occupied cells in the map.
            (self.min_bx, self.min_by, self.w, self.h) = (0, 0, 0, 0);
            for n in nodes.iter().filter(|n| alive[n.id.index()]) {
                self.patched.entry(bucket_key(n.position, bucket_size)).or_default().push(n.id);
            }
            return;
        }
        (self.min_bx, self.min_by, self.w, self.h) = (min_bx, min_by, w, h);
        let mut counts = vec![0u32; cells as usize + 1];
        for n in nodes.iter().filter(|n| alive[n.id.index()]) {
            let i = self.cell_index(bucket_key(n.position, bucket_size)).expect("in extent");
            counts[i + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        self.ids = vec![NodeId(0); counts[counts.len() - 1] as usize];
        let mut cursor = counts.clone();
        for n in nodes.iter().filter(|n| alive[n.id.index()]) {
            let i = self.cell_index(bucket_key(n.position, bucket_size)).expect("in extent");
            self.ids[cursor[i] as usize] = n.id;
            cursor[i] += 1;
        }
        self.offsets = counts;
    }
}

/// An immutable unit-disk graph over a set of deployed nodes.
///
/// # Examples
///
/// ```
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
/// use pool_netsim::topology::Topology;
///
/// let nodes = Deployment::new(Rect::square(100.0), 60, Placement::Uniform, 1).nodes();
/// let topo = Topology::build(nodes, 25.0).unwrap();
/// let some_node = topo.nodes()[0].id;
/// for &nb in topo.neighbors(some_node) {
///     assert!(topo.distance(some_node, nb) <= 25.0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    radio_range: f64,
    /// CSR adjacency: the neighbor row of node `i` is
    /// `adj_links[adj_offsets[i]..adj_offsets[i + 1]]`, ascending by id —
    /// unless the row is overlaid (`row_patch[i] != UNPATCHED`), in which
    /// case it lives in `patch_rows[row_patch[i]]`.
    adj_offsets: Vec<u32>,
    adj_links: Vec<NodeId>,
    row_patch: Vec<u32>,
    patch_rows: Vec<Vec<NodeId>>,
    grid: SpatialGrid,
    bucket_size: f64,
    bounds: Rect,
    /// Liveness flags: failed nodes keep their id and position (so
    /// bookkeeping stays dense) but vanish from neighbor tables, spatial
    /// queries, and connectivity.
    alive: Vec<bool>,
}

impl Topology {
    /// Builds the unit-disk topology for `nodes` with the given radio range.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::EmptyDeployment`] if `nodes` is empty and
    /// [`NetsimError::InvalidRadioRange`] if the range is not positive and
    /// finite.
    pub fn build(nodes: Vec<Node>, radio_range: f64) -> Result<Self, NetsimError> {
        if nodes.is_empty() {
            return Err(NetsimError::EmptyDeployment);
        }
        if !(radio_range.is_finite() && radio_range > 0.0) {
            return Err(NetsimError::InvalidRadioRange { range: radio_range });
        }
        let bucket_size = radio_range;
        let mut min = nodes[0].position;
        let mut max = nodes[0].position;
        for node in &nodes {
            min.x = min.x.min(node.position.x);
            min.y = min.y.min(node.position.y);
            max.x = max.x.max(node.position.x);
            max.y = max.y.max(node.position.y);
        }
        let n = nodes.len();
        let alive = vec![true; n];
        let mut topo = Topology {
            nodes,
            radio_range,
            adj_offsets: vec![0; n + 1],
            adj_links: Vec::new(),
            row_patch: vec![UNPATCHED; n],
            patch_rows: Vec::new(),
            grid: SpatialGrid::default(),
            bucket_size,
            bounds: Rect::new(min, max),
            alive,
        };
        topo.grid.rebuild(&topo.nodes, &topo.alive, bucket_size);
        let range_sq = radio_range * radio_range;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut links = Vec::new();
        let mut row = Vec::new();
        offsets.push(0u32);
        for i in 0..n {
            let position = topo.nodes[i].position;
            let id = topo.nodes[i].id;
            let (bx, by) = bucket_key(position, bucket_size);
            row.clear();
            for dx in -1..=1 {
                for dy in -1..=1 {
                    for &other in topo.grid.bucket((bx + dx, by + dy)) {
                        if other != id
                            && topo.nodes[other.index()].position.distance_sq(position) <= range_sq
                        {
                            row.push(other);
                        }
                    }
                }
            }
            // Deterministic neighbor order regardless of hash iteration.
            row.sort_unstable();
            links.extend_from_slice(&row);
            offsets.push(links.len() as u32);
        }
        topo.adj_offsets = offsets;
        topo.adj_links = links;
        Ok(topo)
    }

    /// The (possibly overlaid) neighbor row of dense index `i`.
    fn row(&self, i: usize) -> &[NodeId] {
        let p = self.row_patch[i];
        if p == UNPATCHED {
            &self.adj_links[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
        } else {
            &self.patch_rows[p as usize]
        }
    }

    /// The neighbor row of dense index `i` as a mutable overlay row,
    /// copied out of the CSR arena on first touch.
    fn row_mut(&mut self, i: usize) -> &mut Vec<NodeId> {
        if self.row_patch[i] == UNPATCHED {
            let s = self.adj_offsets[i] as usize;
            let e = self.adj_offsets[i + 1] as usize;
            let copy = self.adj_links[s..e].to_vec();
            self.row_patch[i] = self.patch_rows.len() as u32;
            self.patch_rows.push(copy);
        }
        &mut self.patch_rows[self.row_patch[i] as usize]
    }

    /// Fails `dead` nodes in place: they keep their ids and positions but
    /// are removed from every neighbor table, the spatial index, and
    /// connectivity. Cost is `O(deaths · degree)` — only the victims' rows
    /// and their neighbors' rows are overlaid.
    ///
    /// # Panics
    ///
    /// Panics if a dead id is out of range.
    pub fn fail_nodes(&mut self, dead: &[NodeId]) {
        for &id in dead {
            let i = id.index();
            if !self.alive[i] {
                continue;
            }
            self.alive[i] = false;
            let links = std::mem::take(self.row_mut(i));
            for nb in &links {
                let table = self.row_mut(nb.index());
                if let Ok(pos) = table.binary_search(&id) {
                    table.remove(pos);
                }
            }
            let key = bucket_key(self.nodes[i].position, self.bucket_size);
            let bucket = self.grid.bucket_mut(key);
            if let Ok(pos) = bucket.binary_search(&id) {
                bucket.remove(pos);
            }
        }
    }

    /// Deploys one fresh node at `position` in place, returning its newly
    /// assigned id (always `NodeId(self.len())`, keeping ids dense so
    /// per-node bookkeeping can grow by appending).
    ///
    /// The joiner's neighbor table is computed against *live* nodes only,
    /// and it is spliced into each neighbor's sorted table, the spatial
    /// hash, and the bounding box.
    pub fn add_node(&mut self, position: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let range_sq = self.radio_range * self.radio_range;
        let (bx, by) = bucket_key(position, self.bucket_size);
        let mut links = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                for &other in self.grid.bucket((bx + dx, by + dy)) {
                    if self.nodes[other.index()].position.distance_sq(position) <= range_sq {
                        links.push(other);
                    }
                }
            }
        }
        links.sort_unstable();
        for &nb in &links {
            let table = self.row_mut(nb.index());
            if let Err(pos) = table.binary_search(&id) {
                table.insert(pos, id);
            }
        }
        self.nodes.push(Node::new(id, position));
        self.alive.push(true);
        // The CSR row for the new node is empty (duplicate trailing
        // offset); its real row lives in the overlay until compaction.
        let end = *self.adj_offsets.last().expect("offsets non-empty");
        self.adj_offsets.push(end);
        self.row_patch.push(self.patch_rows.len() as u32);
        self.patch_rows.push(links);
        let bucket = self.grid.bucket_mut((bx, by));
        if let Err(pos) = bucket.binary_search(&id) {
            bucket.insert(pos, id);
        }
        let min = Point::new(self.bounds.min.x.min(position.x), self.bounds.min.y.min(position.y));
        let max = Point::new(self.bounds.max.x.max(position.x), self.bounds.max.y.max(position.y));
        self.bounds = Rect::new(min, max);
        id
    }

    /// Relocates node `id` to `new_position` in place (waypoint mobility):
    /// its old radio links are torn down and its neighbor table, every
    /// affected neighbor's table, and the spatial hash are recomputed at
    /// the new position.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or dead — a failed node cannot move.
    pub fn move_node(&mut self, id: NodeId, new_position: Point) {
        assert!(self.alive[id.index()], "cannot move dead node {id}");
        let i = id.index();
        // Tear down the old links and spatial-hash entry.
        let old_key = bucket_key(self.nodes[i].position, self.bucket_size);
        let bucket = self.grid.bucket_mut(old_key);
        if let Ok(pos) = bucket.binary_search(&id) {
            bucket.remove(pos);
        }
        let old_links = std::mem::take(self.row_mut(i));
        for nb in &old_links {
            let table = self.row_mut(nb.index());
            if let Ok(pos) = table.binary_search(&id) {
                table.remove(pos);
            }
        }
        // Re-deploy at the new position.
        self.nodes[i].position = new_position;
        let range_sq = self.radio_range * self.radio_range;
        let (bx, by) = bucket_key(new_position, self.bucket_size);
        let mut links = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                for &other in self.grid.bucket((bx + dx, by + dy)) {
                    if other != id
                        && self.nodes[other.index()].position.distance_sq(new_position) <= range_sq
                    {
                        links.push(other);
                    }
                }
            }
        }
        links.sort_unstable();
        for &nb in &links {
            let table = self.row_mut(nb.index());
            if let Err(pos) = table.binary_search(&id) {
                table.insert(pos, id);
            }
        }
        *self.row_mut(i) = links;
        let bucket = self.grid.bucket_mut((bx, by));
        if let Err(pos) = bucket.binary_search(&id) {
            bucket.insert(pos, id);
        }
        let min = Point::new(
            self.bounds.min.x.min(new_position.x),
            self.bounds.min.y.min(new_position.y),
        );
        let max = Point::new(
            self.bounds.max.x.max(new_position.x),
            self.bounds.max.y.max(new_position.y),
        );
        self.bounds = Rect::new(min, max);
    }

    /// Folds the mutation overlay back into the flat CSR arenas: one
    /// `O(n + links)` pass over the adjacency plus a counting-sort rebuild
    /// of the spatial grid. Call once per churn epoch — between calls,
    /// lookups on overlaid rows pay one extra indirection but stay exact.
    pub fn compact(&mut self) {
        if !self.patch_rows.is_empty() {
            let n = self.nodes.len();
            let mut offsets = Vec::with_capacity(n + 1);
            let mut links = Vec::with_capacity(self.adj_links.len());
            offsets.push(0u32);
            for i in 0..n {
                links.extend_from_slice(self.row(i));
                offsets.push(links.len() as u32);
            }
            self.adj_offsets = offsets;
            self.adj_links = links;
            self.row_patch.clear();
            self.row_patch.resize(n, UNPATCHED);
            self.patch_rows.clear();
        }
        if !self.grid.patched.is_empty() || self.row_patch.len() != self.alive.len() {
            self.grid.rebuild(&self.nodes, &self.alive, self.bucket_size);
        }
    }

    /// Number of adjacency rows currently overlaid (not yet compacted).
    /// Scale probes assert this stays `O(churn)`, never `O(n)`.
    pub fn patched_rows(&self) -> usize {
        self.patch_rows.len()
    }

    /// A copy of this topology with `dead` nodes failed: they keep their
    /// ids and positions but are removed from every neighbor table, the
    /// spatial index, and connectivity.
    ///
    /// # Panics
    ///
    /// Panics if a dead id is out of range.
    pub fn without_nodes(&self, dead: &[NodeId]) -> Topology {
        let mut topo = self.clone();
        topo.fail_nodes(dead);
        topo
    }

    /// A copy of this topology with one freshly deployed node at
    /// `position`, returned along with its newly assigned id (always
    /// `NodeId(self.len())`, keeping ids dense so per-node bookkeeping can
    /// grow by appending).
    ///
    /// The joiner's neighbor table is computed against *live* nodes only,
    /// and it is spliced into each neighbor's sorted table, the spatial
    /// hash, and the bounding box. The original topology is untouched.
    pub fn with_node(&self, position: Point) -> (Topology, NodeId) {
        let mut topo = self.clone();
        let id = topo.add_node(position);
        (topo, id)
    }

    /// A copy of this topology with node `id` relocated to `new_position`
    /// (waypoint mobility): its old radio links are torn down and its
    /// neighbor table, every affected neighbor's table, and the spatial
    /// hash are recomputed at the new position. The original topology is
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or dead — a failed node cannot move.
    pub fn with_moved_node(&self, id: NodeId, new_position: Point) -> Topology {
        let mut topo = self.clone();
        topo.move_node(id, new_position);
        topo
    }

    /// Whether node `id` is alive (has not been failed).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// All deployed nodes, indexed by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes (never true for a built topology).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The radio range in meters.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Bounding box of the deployed node positions.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Position of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id.index()].position
    }

    /// The neighbor table of node `id` (every node within radio range),
    /// sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.row(id.index())
    }

    /// Whether `a` and `b` can communicate directly.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// The node whose position is closest to `target` (ties broken by lower
    /// id). Uses the spatial hash with an expanding ring search.
    pub fn nearest_node(&self, target: Point) -> NodeId {
        let (bx, by) = bucket_key(target, self.bucket_size);
        let mut best: Option<(f64, NodeId)> = None;
        let mut ring = 0i64;
        loop {
            let mut any_bucket = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    // Only the ring boundary is new.
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    let ids = self.grid.bucket((bx + dx, by + dy));
                    if ids.is_empty() {
                        continue;
                    }
                    any_bucket = true;
                    for &id in ids {
                        let d = self.position(id).distance_sq(target);
                        let better = match best {
                            None => true,
                            Some((bd, bid)) => d < bd || (d == bd && id < bid),
                        };
                        if better {
                            best = Some((d, id));
                        }
                    }
                }
            }
            // Once a candidate is found, we must still scan one extra ring:
            // a closer node can sit in an adjacent bucket.
            if let Some((bd, id)) = best {
                let safe_radius = (ring as f64) * self.bucket_size;
                if bd.sqrt() <= safe_radius || ring > self.max_ring() {
                    return id;
                }
            }
            if !any_bucket && ring > self.max_ring() {
                // All buckets exhausted: return the best seen (the topology
                // is non-empty, so by now best is set).
                if let Some((_, id)) = best {
                    return id;
                }
            }
            ring += 1;
        }
    }

    /// All nodes within `radius` of `target`.
    pub fn nodes_within(&self, target: Point, radius: f64) -> Vec<NodeId> {
        let r_buckets = (radius / self.bucket_size).ceil() as i64;
        let (bx, by) = bucket_key(target, self.bucket_size);
        let rsq = radius * radius;
        let mut out = Vec::new();
        for dx in -r_buckets..=r_buckets {
            for dy in -r_buckets..=r_buckets {
                for &id in self.grid.bucket((bx + dx, by + dy)) {
                    if self.position(id).distance_sq(target) <= rsq {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        let total: usize = (0..self.nodes.len()).map(|i| self.row(i).len()).sum();
        total as f64 / self.nodes.len() as f64
    }

    /// Size of the largest connected component of *live* nodes (BFS over
    /// the unit-disk graph).
    pub fn largest_component(&self) -> usize {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut best = 0;
        let mut queue = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            seen[start] = true;
            queue.push(start);
            let mut size = 0;
            while let Some(u) = queue.pop() {
                size += 1;
                for nb in self.row(u) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            best = best.max(size);
        }
        best
    }

    /// The members of the largest connected component of live nodes, in
    /// ascending id order (ties between equal-sized components break toward
    /// the one containing the smallest node id, so the result is
    /// deterministic).
    pub fn largest_component_members(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut best: Vec<NodeId> = Vec::new();
        let mut queue = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            seen[start] = true;
            queue.push(start);
            let mut members = Vec::new();
            while let Some(u) = queue.pop() {
                members.push(self.nodes[u].id);
                for nb in self.row(u) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            if members.len() > best.len() {
                best = members;
            }
        }
        best.sort_unstable();
        best
    }

    /// Whether the live unit-disk graph is connected.
    pub fn is_connected(&self) -> bool {
        self.largest_component() == self.alive_count()
    }

    /// Errors unless the network is connected. Routing guarantees (GPSR
    /// delivery, splitter reachability) require connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::Disconnected`] with component statistics.
    pub fn require_connected(&self) -> Result<(), NetsimError> {
        let largest = self.largest_component();
        let alive = self.alive_count();
        if largest == alive {
            Ok(())
        } else {
            Err(NetsimError::Disconnected { largest_component: largest, total: alive })
        }
    }

    fn max_ring(&self) -> i64 {
        let w = (self.bounds.width() / self.bucket_size).ceil() as i64;
        let h = (self.bounds.height() / self.bucket_size).ceil() as i64;
        w.max(h) + 2
    }

    /// Every occupied spatial-hash bucket, for invariant checks.
    #[cfg(test)]
    fn all_buckets(&self) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> =
            self.grid.patched.values().filter(|v| !v.is_empty()).cloned().collect();
        for cy in 0..self.grid.h {
            for cx in 0..self.grid.w {
                let key = (self.grid.min_bx + cx, self.grid.min_by + cy);
                if self.grid.patched.contains_key(&key) {
                    continue;
                }
                let ids = self.grid.bucket(key);
                if !ids.is_empty() {
                    out.push(ids.to_vec());
                }
            }
        }
        out
    }
}

fn bucket_key(p: Point, size: f64) -> (i64, i64) {
    ((p.x / size).floor() as i64, (p.y / size).floor() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample_topology(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn neighbors_match_brute_force() {
        let topo = sample_topology(80, 100.0, 30.0, 9);
        for a in topo.nodes() {
            let brute: Vec<NodeId> = topo
                .nodes()
                .iter()
                .filter(|b| b.id != a.id && b.position.distance(a.position) <= 30.0)
                .map(|b| b.id)
                .collect();
            assert_eq!(topo.neighbors(a.id), brute.as_slice(), "node {}", a.id);
        }
    }

    #[test]
    fn are_neighbors_is_symmetric() {
        let topo = sample_topology(60, 80.0, 25.0, 2);
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(topo.are_neighbors(a.id, b.id), topo.are_neighbors(b.id, a.id));
            }
        }
    }

    #[test]
    fn nearest_node_matches_brute_force() {
        let topo = sample_topology(70, 90.0, 20.0, 4);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(45.0, 45.0),
            Point::new(89.9, 0.1),
            Point::new(200.0, 200.0), // outside the field
            Point::new(-50.0, 45.0),
        ];
        for p in probes {
            let got = topo.nearest_node(p);
            let want = topo
                .nodes()
                .iter()
                .min_by(|a, b| {
                    a.position
                        .distance_sq(p)
                        .total_cmp(&b.position.distance_sq(p))
                        .then(a.id.cmp(&b.id))
                })
                .unwrap()
                .id;
            assert_eq!(
                topo.position(got).distance(p),
                topo.position(want).distance(p),
                "probe {p}"
            );
        }
    }

    #[test]
    fn nodes_within_matches_brute_force() {
        let topo = sample_topology(60, 70.0, 15.0, 6);
        let p = Point::new(35.0, 35.0);
        let got = topo.nodes_within(p, 22.0);
        let want: Vec<NodeId> =
            topo.nodes().iter().filter(|n| n.position.distance(p) <= 22.0).map(|n| n.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_node_topology() {
        let topo = Topology::build(vec![Node::new(NodeId(0), Point::new(1.0, 1.0))], 10.0).unwrap();
        assert_eq!(topo.len(), 1);
        assert!(topo.neighbors(NodeId(0)).is_empty());
        assert_eq!(topo.nearest_node(Point::new(99.0, 99.0)), NodeId(0));
        assert!(topo.is_connected());
    }

    #[test]
    fn connectivity_detects_split_network() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(1.0, 0.0)),
            Node::new(NodeId(2), Point::new(100.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(!topo.is_connected());
        assert_eq!(topo.largest_component(), 2);
        assert_eq!(topo.largest_component_members(), vec![NodeId(0), NodeId(1)]);
        assert!(matches!(
            topo.require_connected(),
            Err(NetsimError::Disconnected { largest_component: 2, total: 3 })
        ));
        // Killing a member of the majority component flips the balance.
        let flipped = topo.without_nodes(&[NodeId(1)]);
        assert_eq!(flipped.largest_component_members().len(), 1);
    }

    #[test]
    fn dense_network_is_connected() {
        let topo = sample_topology(120, 100.0, 30.0, 12);
        assert!(topo.is_connected());
        assert!(topo.require_connected().is_ok());
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(matches!(Topology::build(vec![], 10.0), Err(NetsimError::EmptyDeployment)));
        let nodes = vec![Node::new(NodeId(0), Point::new(0.0, 0.0))];
        assert!(matches!(
            Topology::build(nodes, f64::NAN),
            Err(NetsimError::InvalidRadioRange { .. })
        ));
    }

    #[test]
    fn mean_degree_reasonable_for_paper_density() {
        let d = Deployment::paper_setting(300, 40.0, 20.0, 77).unwrap();
        let topo = Topology::build(d.nodes(), 40.0).unwrap();
        let deg = topo.mean_degree();
        assert!(deg > 14.0 && deg < 22.0, "mean degree {deg}");
    }

    #[test]
    fn sparse_extent_falls_back_to_map_buckets() {
        // Two clusters ~10⁵ bucket-widths apart: a dense grid would need
        // ~10¹⁰ cells. The fallback keeps only occupied cells.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(3.0, 0.0)),
            Node::new(NodeId(2), Point::new(1_000_000.0, 1_000_000.0)),
            Node::new(NodeId(3), Point::new(1_000_003.0, 1_000_000.0)),
        ];
        let topo = Topology::build(nodes, 10.0).unwrap();
        assert_eq!(topo.grid.w, 0, "sparse extent must not allocate a dense grid");
        assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(topo.neighbors(NodeId(2)), &[NodeId(3)]);
        assert_eq!(topo.nearest_node(Point::new(2.0, 1.0)), NodeId(1));
        assert_eq!(topo.nearest_node(Point::new(1_000_001.0, 1_000_001.0)), NodeId(2));
        assert!(!topo.is_connected());
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn failed_nodes_leave_neighbor_tables() {
        let topo = sample(60, 80.0, 30.0, 2);
        let dead = NodeId(10);
        let failed = topo.without_nodes(&[dead]);
        assert!(!failed.is_alive(dead));
        assert_eq!(failed.alive_count(), 59);
        assert!(failed.neighbors(dead).is_empty());
        for node in failed.nodes() {
            assert!(!failed.neighbors(node.id).contains(&dead));
        }
        // The original topology is untouched.
        assert!(topo.is_alive(dead));
        assert_eq!(topo.alive_count(), 60);
    }

    #[test]
    fn nearest_node_skips_the_dead() {
        let topo = sample(50, 70.0, 25.0, 3);
        let probe = topo.position(NodeId(7));
        assert_eq!(topo.nearest_node(probe), NodeId(7));
        let failed = topo.without_nodes(&[NodeId(7)]);
        let nearest = failed.nearest_node(probe);
        assert_ne!(nearest, NodeId(7));
        assert!(failed.is_alive(nearest));
    }

    #[test]
    fn connectivity_over_live_nodes_only() {
        // Three nodes in a line; killing the middle disconnects the ends,
        // killing an end leaves the rest connected.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(4.0, 0.0)),
            Node::new(NodeId(2), Point::new(8.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(topo.is_connected());
        assert!(!topo.without_nodes(&[NodeId(1)]).is_connected());
        assert!(topo.without_nodes(&[NodeId(0)]).is_connected());
    }

    #[test]
    fn positions_remain_queryable_after_failure() {
        let topo = sample(30, 50.0, 25.0, 4);
        let failed = topo.without_nodes(&[NodeId(3)]);
        assert_eq!(failed.position(NodeId(3)), topo.position(NodeId(3)));
    }

    #[test]
    fn cascading_failures_accumulate() {
        let topo = sample(40, 60.0, 30.0, 5);
        let once = topo.without_nodes(&[NodeId(0), NodeId(1)]);
        let twice = once.without_nodes(&[NodeId(2)]);
        assert_eq!(twice.alive_count(), 37);
        for id in [0u32, 1, 2] {
            assert!(!twice.is_alive(NodeId(id)));
        }
    }
}

#[cfg(test)]
mod mutation_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    /// Every live node's neighbor table equals the brute-force unit-disk
    /// neighborhood over live nodes, in sorted order.
    fn assert_tables_consistent(topo: &Topology) {
        let range = topo.radio_range();
        for a in topo.nodes() {
            if !topo.is_alive(a.id) {
                assert!(topo.neighbors(a.id).is_empty());
                continue;
            }
            let brute: Vec<NodeId> = topo
                .nodes()
                .iter()
                .filter(|b| {
                    b.id != a.id
                        && topo.is_alive(b.id)
                        && b.position.distance(topo.position(a.id)) <= range
                })
                .map(|b| b.id)
                .collect();
            assert_eq!(topo.neighbors(a.id), brute.as_slice(), "node {}", a.id);
        }
    }

    /// Every spatial-hash bucket holds its ids in strictly ascending order
    /// — the deterministic bucket-order contract.
    fn assert_buckets_sorted(topo: &Topology) {
        for bucket in topo.all_buckets() {
            assert!(bucket.windows(2).all(|w| w[0] < w[1]), "unsorted bucket {bucket:?}");
        }
    }

    #[test]
    fn joined_node_gets_dense_id_and_symmetric_links() {
        let topo = sample(60, 80.0, 25.0, 11);
        let p = Point::new(40.0, 40.0);
        let (grown, id) = topo.with_node(p);
        assert_eq!(id, NodeId(60));
        assert_eq!(grown.len(), 61);
        assert!(grown.is_alive(id));
        assert_eq!(grown.position(id), p);
        assert_tables_consistent(&grown);
        assert!(!grown.neighbors(id).is_empty(), "a mid-field joiner must find neighbors");
        // The original is untouched.
        assert_eq!(topo.len(), 60);
        assert_tables_consistent(&topo);
    }

    #[test]
    fn joined_node_is_spatially_indexed() {
        let topo = sample(50, 70.0, 25.0, 12);
        let p = Point::new(200.0, 200.0); // far outside the field
        let (grown, id) = topo.with_node(p);
        assert_eq!(grown.nearest_node(Point::new(199.0, 199.0)), id);
        assert!(grown.bounds().contains(p));
        assert!(grown.neighbors(id).is_empty(), "an isolated joiner has no links");
        assert!(!grown.is_connected());
    }

    #[test]
    fn join_after_failure_ignores_the_dead() {
        let topo = sample(60, 80.0, 25.0, 13);
        let dead = NodeId(17);
        let failed = topo.without_nodes(&[dead]);
        let (grown, id) = failed.with_node(topo.position(dead));
        assert!(!grown.neighbors(id).contains(&dead));
        assert_tables_consistent(&grown);
    }

    #[test]
    fn moved_node_reconnects_at_its_destination() {
        let topo = sample(70, 90.0, 25.0, 14);
        let mover = NodeId(5);
        let dest = Point::new(85.0, 85.0);
        let moved = topo.with_moved_node(mover, dest);
        assert_eq!(moved.position(mover), dest);
        assert_tables_consistent(&moved);
        // Old links that are now out of range are gone, in both directions.
        for nb in topo.neighbors(mover) {
            if moved.distance(mover, *nb) > moved.radio_range() {
                assert!(!moved.are_neighbors(mover, *nb));
                assert!(!moved.are_neighbors(*nb, mover));
            }
        }
        // The spatial hash follows the move.
        assert_eq!(moved.nearest_node(dest), mover);
        // The original is untouched.
        assert_eq!(topo.position(mover), topo.nodes()[mover.index()].position);
        assert_tables_consistent(&topo);
    }

    #[test]
    fn move_is_reversible() {
        let topo = sample(40, 60.0, 20.0, 15);
        let mover = NodeId(9);
        let home = topo.position(mover);
        let away = topo.with_moved_node(mover, Point::new(-10.0, -10.0));
        let back = away.with_moved_node(mover, home);
        for node in topo.nodes() {
            assert_eq!(back.neighbors(node.id), topo.neighbors(node.id), "node {}", node.id);
        }
    }

    #[test]
    #[should_panic(expected = "cannot move dead node")]
    fn moving_a_dead_node_panics() {
        let topo = sample(30, 50.0, 20.0, 16);
        let failed = topo.without_nodes(&[NodeId(3)]);
        let _ = failed.with_moved_node(NodeId(3), Point::new(1.0, 1.0));
    }

    #[test]
    fn churn_interleaving_keeps_tables_consistent() {
        let mut topo = sample(50, 70.0, 22.0, 17);
        let steps: Vec<(u32, f64, f64)> =
            (0..12).map(|i| (i * 3 % 50, f64::from(i * 7 % 60), f64::from(i * 11 % 60))).collect();
        for (i, &(raw, x, y)) in steps.iter().enumerate() {
            match i % 3 {
                0 => topo = topo.with_node(Point::new(x, y)).0,
                1 => {
                    let id = NodeId(raw);
                    if topo.is_alive(id) {
                        topo = topo.with_moved_node(id, Point::new(x, y));
                    }
                }
                _ => topo = topo.without_nodes(&[NodeId(raw)]),
            }
            assert_tables_consistent(&topo);
            assert_buckets_sorted(&topo);
        }
    }

    #[test]
    fn buckets_stay_sorted_under_every_mutation() {
        let mut topo = sample(40, 60.0, 20.0, 18);
        assert_buckets_sorted(&topo);
        // A move into an occupied bucket must splice the mover by id, not
        // append it (the seed representation appended).
        let crowd = topo.position(NodeId(30));
        topo.move_node(NodeId(2), Point::new(crowd.x + 0.5, crowd.y + 0.5));
        assert_buckets_sorted(&topo);
        topo.move_node(NodeId(35), Point::new(crowd.x - 0.5, crowd.y - 0.5));
        assert_buckets_sorted(&topo);
        topo.add_node(Point::new(crowd.x, crowd.y + 1.0));
        topo.fail_nodes(&[NodeId(30)]);
        assert_buckets_sorted(&topo);
        topo.compact();
        assert_buckets_sorted(&topo);
        assert_tables_consistent(&topo);
    }
}

#[cfg(test)]
mod arena_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    fn assert_same_tables(a: &Topology, b: &Topology) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let id = NodeId(i as u32);
            assert_eq!(a.is_alive(id), b.is_alive(id), "alive {id}");
            assert_eq!(a.position(id), b.position(id), "position {id}");
            assert_eq!(a.neighbors(id), b.neighbors(id), "row {id}");
        }
        assert_eq!(a.bounds(), b.bounds());
    }

    /// One epoch of in-place churn + one compaction equals the persistent
    /// per-event path, row for row.
    #[test]
    fn in_place_epoch_matches_persistent_path() {
        let base = sample(80, 90.0, 25.0, 21);
        let joins = [Point::new(10.0, 80.0), Point::new(95.0, 5.0)];
        let moves = [(NodeId(3), Point::new(44.0, 44.0)), (NodeId(60), Point::new(2.0, 2.0))];
        let deaths = [NodeId(7), NodeId(41), NodeId(42)];

        let mut persistent = base.clone();
        for &p in &joins {
            persistent = persistent.with_node(p).0;
        }
        for &(id, dest) in &moves {
            persistent = persistent.with_moved_node(id, dest);
        }
        persistent = persistent.without_nodes(&deaths);

        let mut in_place = base.clone();
        for &p in &joins {
            in_place.add_node(p);
        }
        for &(id, dest) in &moves {
            in_place.move_node(id, dest);
        }
        in_place.fail_nodes(&deaths);
        assert!(in_place.patched_rows() > 0, "mutations must overlay rows");
        assert_same_tables(&in_place, &persistent);
        in_place.compact();
        assert_eq!(in_place.patched_rows(), 0, "compaction folds the overlay");
        assert_same_tables(&in_place, &persistent);

        // Spatial queries agree before and after compaction.
        for probe in [Point::new(0.0, 0.0), Point::new(44.0, 44.0), Point::new(90.0, 10.0)] {
            assert_eq!(in_place.nearest_node(probe), persistent.nearest_node(probe));
            assert_eq!(in_place.nodes_within(probe, 30.0), persistent.nodes_within(probe, 30.0));
        }
    }

    /// A compacted churned topology equals a fresh build over the same
    /// surviving deployment (same rows, same buckets, same queries).
    #[test]
    fn compacted_arena_matches_fresh_build() {
        let mut topo = sample(70, 80.0, 22.0, 22);
        let j = topo.add_node(Point::new(40.0, 41.0));
        topo.move_node(NodeId(5), Point::new(70.0, 70.0));
        topo.fail_nodes(&[NodeId(11), NodeId(12)]);
        topo.compact();

        // Rebuild from scratch over the surviving live nodes, keeping ids.
        let nodes: Vec<Node> = topo.nodes().to_vec();
        let fresh = Topology::build(nodes, topo.radio_range()).unwrap();
        for node in topo.nodes() {
            if topo.is_alive(node.id) {
                let want: Vec<NodeId> = fresh
                    .neighbors(node.id)
                    .iter()
                    .copied()
                    .filter(|&n| topo.is_alive(n))
                    .collect();
                assert_eq!(topo.neighbors(node.id), want.as_slice(), "row {}", node.id);
            } else {
                assert!(topo.neighbors(node.id).is_empty());
            }
        }
        assert!(topo.is_alive(j));
    }

    /// compact() on an untouched topology is a no-op for every observable.
    #[test]
    fn compact_without_mutations_changes_nothing() {
        let mut topo = sample(50, 60.0, 20.0, 23);
        let reference = topo.clone();
        topo.compact();
        assert_same_tables(&topo, &reference);
        assert_eq!(topo.patched_rows(), 0);
    }

    /// The overlay stays O(churn): failing k nodes patches at most
    /// k · (degree + 1) rows, never O(n).
    #[test]
    fn overlay_is_bounded_by_touched_rows() {
        let mut topo = sample(200, 140.0, 20.0, 24);
        let victims = [NodeId(10), NodeId(20), NodeId(30)];
        let degree_bound: usize =
            victims.iter().map(|&v| topo.neighbors(v).len() + 1).sum::<usize>();
        topo.fail_nodes(&victims);
        assert!(
            topo.patched_rows() <= degree_bound,
            "{} rows patched for {} deaths (bound {degree_bound})",
            topo.patched_rows(),
            victims.len(),
        );
        assert!(topo.patched_rows() < topo.len() / 2, "overlay must stay far below O(n)");
    }
}
