//! Unit-disk network topology: neighbor tables and spatial queries.
//!
//! A [`Topology`] is built once from a node list and a radio range. It
//! provides the neighbor tables that every node in the paper maintains "via
//! periodic exchange of beacon messages" (§2), plus the spatial queries the
//! storage schemes need (nearest node to a location, connectivity checks).
//!
//! Neighbor computation uses a spatial hash bucketed at the radio range, so
//! building is `O(n · expected-degree)` rather than `O(n²)`.

use crate::error::NetsimError;
use crate::geometry::{Point, Rect};
use crate::node::{Node, NodeId};
use std::collections::HashMap;

/// An immutable unit-disk graph over a set of deployed nodes.
///
/// # Examples
///
/// ```
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
/// use pool_netsim::topology::Topology;
///
/// let nodes = Deployment::new(Rect::square(100.0), 60, Placement::Uniform, 1).nodes();
/// let topo = Topology::build(nodes, 25.0).unwrap();
/// let some_node = topo.nodes()[0].id;
/// for &nb in topo.neighbors(some_node) {
///     assert!(topo.distance(some_node, nb) <= 25.0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    radio_range: f64,
    neighbors: Vec<Vec<NodeId>>,
    buckets: HashMap<(i64, i64), Vec<NodeId>>,
    bucket_size: f64,
    bounds: Rect,
    /// Liveness flags: failed nodes keep their id and position (so
    /// bookkeeping stays dense) but vanish from neighbor tables, spatial
    /// queries, and connectivity.
    alive: Vec<bool>,
}

impl Topology {
    /// Builds the unit-disk topology for `nodes` with the given radio range.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::EmptyDeployment`] if `nodes` is empty and
    /// [`NetsimError::InvalidRadioRange`] if the range is not positive and
    /// finite.
    pub fn build(nodes: Vec<Node>, radio_range: f64) -> Result<Self, NetsimError> {
        if nodes.is_empty() {
            return Err(NetsimError::EmptyDeployment);
        }
        if !(radio_range.is_finite() && radio_range > 0.0) {
            return Err(NetsimError::InvalidRadioRange { range: radio_range });
        }
        let bucket_size = radio_range;
        let mut buckets: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        let mut min = nodes[0].position;
        let mut max = nodes[0].position;
        for node in &nodes {
            let key = bucket_key(node.position, bucket_size);
            buckets.entry(key).or_default().push(node.id);
            min.x = min.x.min(node.position.x);
            min.y = min.y.min(node.position.y);
            max.x = max.x.max(node.position.x);
            max.y = max.y.max(node.position.y);
        }
        let mut neighbors = vec![Vec::new(); nodes.len()];
        let range_sq = radio_range * radio_range;
        for node in &nodes {
            let (bx, by) = bucket_key(node.position, bucket_size);
            let list = &mut neighbors[node.id.index()];
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(ids) = buckets.get(&(bx + dx, by + dy)) {
                        for &other in ids {
                            if other != node.id
                                && nodes[other.index()].position.distance_sq(node.position)
                                    <= range_sq
                            {
                                list.push(other);
                            }
                        }
                    }
                }
            }
            // Deterministic neighbor order regardless of hash iteration.
            list.sort_unstable();
        }
        let alive = vec![true; nodes.len()];
        Ok(Topology {
            nodes,
            radio_range,
            neighbors,
            buckets,
            bucket_size,
            bounds: Rect::new(min, max),
            alive,
        })
    }

    /// A copy of this topology with `dead` nodes failed: they keep their
    /// ids and positions but are removed from every neighbor table, the
    /// spatial index, and connectivity.
    ///
    /// # Panics
    ///
    /// Panics if a dead id is out of range.
    pub fn without_nodes(&self, dead: &[NodeId]) -> Topology {
        let mut topo = self.clone();
        for &id in dead {
            topo.alive[id.index()] = false;
        }
        // Rebuild neighbor tables and buckets over live nodes only.
        for list in &mut topo.neighbors {
            list.retain(|n| topo.alive[n.index()]);
        }
        for (i, alive) in topo.alive.iter().enumerate() {
            if !alive {
                topo.neighbors[i].clear();
            }
        }
        for ids in topo.buckets.values_mut() {
            ids.retain(|n| topo.alive[n.index()]);
        }
        topo.buckets.retain(|_, ids| !ids.is_empty());
        topo
    }

    /// Whether node `id` is alive (has not been failed).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// All deployed nodes, indexed by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes (never true for a built topology).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The radio range in meters.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Bounding box of the deployed node positions.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Position of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id.index()].position
    }

    /// The neighbor table of node `id` (every node within radio range),
    /// sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Whether `a` and `b` can communicate directly.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// The node whose position is closest to `target` (ties broken by lower
    /// id). Uses the spatial hash with an expanding ring search.
    pub fn nearest_node(&self, target: Point) -> NodeId {
        let (bx, by) = bucket_key(target, self.bucket_size);
        let mut best: Option<(f64, NodeId)> = None;
        let mut ring = 0i64;
        loop {
            let mut any_bucket = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    // Only the ring boundary is new.
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    if let Some(ids) = self.buckets.get(&(bx + dx, by + dy)) {
                        any_bucket = true;
                        for &id in ids {
                            let d = self.position(id).distance_sq(target);
                            let better = match best {
                                None => true,
                                Some((bd, bid)) => d < bd || (d == bd && id < bid),
                            };
                            if better {
                                best = Some((d, id));
                            }
                        }
                    }
                }
            }
            // Once a candidate is found, we must still scan one extra ring:
            // a closer node can sit in an adjacent bucket.
            if let Some((bd, id)) = best {
                let safe_radius = (ring as f64) * self.bucket_size;
                if bd.sqrt() <= safe_radius || ring > self.max_ring() {
                    return id;
                }
            }
            if !any_bucket && ring > self.max_ring() {
                // All buckets exhausted: return the best seen (the topology
                // is non-empty, so by now best is set).
                if let Some((_, id)) = best {
                    return id;
                }
            }
            ring += 1;
        }
    }

    /// All nodes within `radius` of `target`.
    pub fn nodes_within(&self, target: Point, radius: f64) -> Vec<NodeId> {
        let r_buckets = (radius / self.bucket_size).ceil() as i64;
        let (bx, by) = bucket_key(target, self.bucket_size);
        let rsq = radius * radius;
        let mut out = Vec::new();
        for dx in -r_buckets..=r_buckets {
            for dy in -r_buckets..=r_buckets {
                if let Some(ids) = self.buckets.get(&(bx + dx, by + dy)) {
                    for &id in ids {
                        if self.position(id).distance_sq(target) <= rsq {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.nodes.len() as f64
    }

    /// Size of the largest connected component of *live* nodes (BFS over
    /// the unit-disk graph).
    pub fn largest_component(&self) -> usize {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut best = 0;
        let mut queue = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            seen[start] = true;
            queue.push(start);
            let mut size = 0;
            while let Some(u) = queue.pop() {
                size += 1;
                for nb in &self.neighbors[u] {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            best = best.max(size);
        }
        best
    }

    /// The members of the largest connected component of live nodes, in
    /// ascending id order (ties between equal-sized components break toward
    /// the one containing the smallest node id, so the result is
    /// deterministic).
    pub fn largest_component_members(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut best: Vec<NodeId> = Vec::new();
        let mut queue = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            seen[start] = true;
            queue.push(start);
            let mut members = Vec::new();
            while let Some(u) = queue.pop() {
                members.push(self.nodes[u].id);
                for nb in &self.neighbors[u] {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            if members.len() > best.len() {
                best = members;
            }
        }
        best.sort_unstable();
        best
    }

    /// Whether the live unit-disk graph is connected.
    pub fn is_connected(&self) -> bool {
        self.largest_component() == self.alive_count()
    }

    /// Errors unless the network is connected. Routing guarantees (GPSR
    /// delivery, splitter reachability) require connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::Disconnected`] with component statistics.
    pub fn require_connected(&self) -> Result<(), NetsimError> {
        let largest = self.largest_component();
        let alive = self.alive_count();
        if largest == alive {
            Ok(())
        } else {
            Err(NetsimError::Disconnected { largest_component: largest, total: alive })
        }
    }

    fn max_ring(&self) -> i64 {
        let w = (self.bounds.width() / self.bucket_size).ceil() as i64;
        let h = (self.bounds.height() / self.bucket_size).ceil() as i64;
        w.max(h) + 2
    }
}

fn bucket_key(p: Point, size: f64) -> (i64, i64) {
    ((p.x / size).floor() as i64, (p.y / size).floor() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample_topology(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn neighbors_match_brute_force() {
        let topo = sample_topology(80, 100.0, 30.0, 9);
        for a in topo.nodes() {
            let brute: Vec<NodeId> = topo
                .nodes()
                .iter()
                .filter(|b| b.id != a.id && b.position.distance(a.position) <= 30.0)
                .map(|b| b.id)
                .collect();
            assert_eq!(topo.neighbors(a.id), brute.as_slice(), "node {}", a.id);
        }
    }

    #[test]
    fn are_neighbors_is_symmetric() {
        let topo = sample_topology(60, 80.0, 25.0, 2);
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(topo.are_neighbors(a.id, b.id), topo.are_neighbors(b.id, a.id));
            }
        }
    }

    #[test]
    fn nearest_node_matches_brute_force() {
        let topo = sample_topology(70, 90.0, 20.0, 4);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(45.0, 45.0),
            Point::new(89.9, 0.1),
            Point::new(200.0, 200.0), // outside the field
            Point::new(-50.0, 45.0),
        ];
        for p in probes {
            let got = topo.nearest_node(p);
            let want = topo
                .nodes()
                .iter()
                .min_by(|a, b| {
                    a.position
                        .distance_sq(p)
                        .partial_cmp(&b.position.distance_sq(p))
                        .unwrap()
                        .then(a.id.cmp(&b.id))
                })
                .unwrap()
                .id;
            assert_eq!(
                topo.position(got).distance(p),
                topo.position(want).distance(p),
                "probe {p}"
            );
        }
    }

    #[test]
    fn nodes_within_matches_brute_force() {
        let topo = sample_topology(60, 70.0, 15.0, 6);
        let p = Point::new(35.0, 35.0);
        let got = topo.nodes_within(p, 22.0);
        let want: Vec<NodeId> =
            topo.nodes().iter().filter(|n| n.position.distance(p) <= 22.0).map(|n| n.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_node_topology() {
        let topo = Topology::build(vec![Node::new(NodeId(0), Point::new(1.0, 1.0))], 10.0).unwrap();
        assert_eq!(topo.len(), 1);
        assert!(topo.neighbors(NodeId(0)).is_empty());
        assert_eq!(topo.nearest_node(Point::new(99.0, 99.0)), NodeId(0));
        assert!(topo.is_connected());
    }

    #[test]
    fn connectivity_detects_split_network() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(1.0, 0.0)),
            Node::new(NodeId(2), Point::new(100.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(!topo.is_connected());
        assert_eq!(topo.largest_component(), 2);
        assert_eq!(topo.largest_component_members(), vec![NodeId(0), NodeId(1)]);
        assert!(matches!(
            topo.require_connected(),
            Err(NetsimError::Disconnected { largest_component: 2, total: 3 })
        ));
        // Killing a member of the majority component flips the balance.
        let flipped = topo.without_nodes(&[NodeId(1)]);
        assert_eq!(flipped.largest_component_members().len(), 1);
    }

    #[test]
    fn dense_network_is_connected() {
        let topo = sample_topology(120, 100.0, 30.0, 12);
        assert!(topo.is_connected());
        assert!(topo.require_connected().is_ok());
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(matches!(Topology::build(vec![], 10.0), Err(NetsimError::EmptyDeployment)));
        let nodes = vec![Node::new(NodeId(0), Point::new(0.0, 0.0))];
        assert!(matches!(
            Topology::build(nodes, f64::NAN),
            Err(NetsimError::InvalidRadioRange { .. })
        ));
    }

    #[test]
    fn mean_degree_reasonable_for_paper_density() {
        let d = Deployment::paper_setting(300, 40.0, 20.0, 77).unwrap();
        let topo = Topology::build(d.nodes(), 40.0).unwrap();
        let deg = topo.mean_degree();
        assert!(deg > 14.0 && deg < 22.0, "mean degree {deg}");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};

    fn sample(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn failed_nodes_leave_neighbor_tables() {
        let topo = sample(60, 80.0, 30.0, 2);
        let dead = NodeId(10);
        let failed = topo.without_nodes(&[dead]);
        assert!(!failed.is_alive(dead));
        assert_eq!(failed.alive_count(), 59);
        assert!(failed.neighbors(dead).is_empty());
        for node in failed.nodes() {
            assert!(!failed.neighbors(node.id).contains(&dead));
        }
        // The original topology is untouched.
        assert!(topo.is_alive(dead));
        assert_eq!(topo.alive_count(), 60);
    }

    #[test]
    fn nearest_node_skips_the_dead() {
        let topo = sample(50, 70.0, 25.0, 3);
        let probe = topo.position(NodeId(7));
        assert_eq!(topo.nearest_node(probe), NodeId(7));
        let failed = topo.without_nodes(&[NodeId(7)]);
        let nearest = failed.nearest_node(probe);
        assert_ne!(nearest, NodeId(7));
        assert!(failed.is_alive(nearest));
    }

    #[test]
    fn connectivity_over_live_nodes_only() {
        // Three nodes in a line; killing the middle disconnects the ends,
        // killing an end leaves the rest connected.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(4.0, 0.0)),
            Node::new(NodeId(2), Point::new(8.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(topo.is_connected());
        assert!(!topo.without_nodes(&[NodeId(1)]).is_connected());
        assert!(topo.without_nodes(&[NodeId(0)]).is_connected());
    }

    #[test]
    fn positions_remain_queryable_after_failure() {
        let topo = sample(30, 50.0, 25.0, 4);
        let failed = topo.without_nodes(&[NodeId(3)]);
        assert_eq!(failed.position(NodeId(3)), topo.position(NodeId(3)));
    }

    #[test]
    fn cascading_failures_accumulate() {
        let topo = sample(40, 60.0, 30.0, 5);
        let once = topo.without_nodes(&[NodeId(0), NodeId(1)]);
        let twice = once.without_nodes(&[NodeId(2)]);
        assert_eq!(twice.alive_count(), 37);
        for id in [0u32, 1, 2] {
            assert!(!twice.is_alive(NodeId(id)));
        }
    }
}
