//! Deterministic scoped worker pool and seed derivation.
//!
//! The execution engine shared by every parallel consumer in the
//! workspace: the figure harness (`pool-bench`) schedules independent
//! trials on it, and the service layer (`pool-service`) drives its
//! per-shard executors through the same pool. It is a hand-rolled scoped
//! pool over [`std::thread`] — no external dependencies; the vendored
//! compat crates are stubs.
//!
//! * [`run_trials`] — workers pull work-item indices from a shared queue
//!   and write results into per-index slots, so aggregation order — and
//!   therefore every emitted byte — is independent of the worker count.
//! * [`derive_seed`] — the per-stream seed derivation (splitmix64 over a
//!   base seed and a stream index), the documented scheme of DESIGN.md
//!   §11: each schedulable unit owns a self-contained RNG stream, which
//!   is what makes it runnable in any order on any number of workers.
//!
//! # Determinism contract
//!
//! A work item may depend only on its input: it builds or exclusively
//! owns all of its mutable state and draws randomness only from RNGs
//! seeded by its spec. Under that contract `run_trials` guarantees the
//! returned `Vec` is byte-for-byte identical for any `jobs ≥ 1`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Derives the RNG seed for stream `stream` of a work family with base
/// seed `base` (splitmix64; the golden-ratio multiplier decorrelates
/// consecutive stream indices).
///
/// # Examples
///
/// ```
/// use pool_netsim::exec::derive_seed;
///
/// // Deterministic, and distinct streams differ.
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
/// assert_ne!(derive_seed(42, 3), derive_seed(42, 4));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs every input through `run` on a scoped pool of at most `jobs`
/// worker threads, returning results in submission order.
///
/// With `jobs == 1` no threads are spawned and the inputs run serially on
/// the caller's stack — the reference execution every parallel run must
/// reproduce byte for byte.
///
/// # Panics
///
/// Panics if `jobs == 0`, and propagates the first panic raised inside any
/// work item (a failed in-item assertion aborts the whole run, exactly as
/// it would serially).
pub fn run_trials<I, T, F>(jobs: usize, inputs: Vec<I>, run: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    assert!(jobs >= 1, "jobs must be at least 1");
    if jobs == 1 || inputs.len() <= 1 {
        return inputs.into_iter().enumerate().map(|(i, input)| run(i, input)).collect();
    }
    let n = inputs.len();
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(inputs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                // Take the next unclaimed item; drop the queue lock before
                // running it so workers never serialize on each other.
                let next = queue.lock().expect("work queue poisoned").pop_front();
                let Some((index, input)) = next else { break };
                let result = run(index, input);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("every item ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Uneven per-item work so completion order scrambles under
        // contention; submission order must survive regardless.
        let inputs: Vec<usize> = (0..32).collect();
        let work = |_, i: usize| {
            let spin = (31 - i) * 1000;
            let mut acc = i as u64;
            for x in 0..spin as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(x);
            }
            (i, acc % 2 + 2)
        };
        let serial = run_trials(1, inputs.clone(), work);
        for jobs in [2, 4, 8] {
            assert_eq!(run_trials(jobs, inputs.clone(), work), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn worker_count_exceeding_items_is_fine() {
        let out = run_trials(16, vec![1, 2, 3], |_, x: i32| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_jobs_rejected() {
        let _ = run_trials(0, vec![()], |_, ()| ());
    }

    #[test]
    fn derived_seeds_are_pinned() {
        // The scheme is part of the determinism contract (DESIGN.md §11):
        // changing it silently re-seeds every sweep, so pin exact values.
        assert_eq!(derive_seed(0, 0), 0);
        assert_eq!(derive_seed(42, 0), 0xa759_ea27_d472_7622);
        assert_eq!(derive_seed(42, 1), 0xbdd7_3226_2feb_6e95);
        assert_eq!(derive_seed(42, 2), 0xd963_9a00_6c85_adb0);
    }
}
