//! ASCII rendering of deployments — a terminal-friendly "Figure 2".
//!
//! Examples and experiment logs render the field as a character raster:
//! nodes, highlighted regions (pools, zones), and routes. Purely
//! diagnostic; nothing in the protocols depends on it.
//!
//! ```text
//! .  .  · 2 2 ·  .  ·
//! ·  . ·2 2 2       ·
//! ·   * * * * ·  . ·
//! ```

use crate::geometry::{Point, Rect};
use crate::node::NodeId;
use crate::topology::Topology;

/// A character canvas over a rectangular field.
///
/// Later draw calls overwrite earlier ones, so draw background layers
/// (regions) first and foreground layers (routes, markers) last.
///
/// # Examples
///
/// ```
/// use pool_netsim::geometry::{Point, Rect};
/// use pool_netsim::render::Canvas;
///
/// let mut canvas = Canvas::new(Rect::square(10.0), 10, 5);
/// canvas.draw_point(Point::new(5.0, 2.5), '*');
/// let art = canvas.render();
/// assert!(art.contains('*'));
/// ```
#[derive(Debug, Clone)]
pub struct Canvas {
    field: Rect,
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// Creates a blank canvas of `cols × rows` characters covering `field`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero or the field is degenerate.
    pub fn new(field: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "canvas must have positive dimensions");
        assert!(field.width() > 0.0 && field.height() > 0.0, "degenerate field");
        Canvas { field, cols, rows, cells: vec![' '; cols * rows] }
    }

    /// Canvas sized for a terminal: 72 columns, aspect-corrected rows
    /// (characters are ~2× taller than wide).
    pub fn terminal(field: Rect) -> Self {
        let cols = 72usize;
        let rows = ((field.height() / field.width()) * cols as f64 / 2.0).ceil().max(1.0) as usize;
        Canvas::new(field, cols, rows)
    }

    /// The character cell for a field position, or `None` if outside.
    fn index_of(&self, p: Point) -> Option<usize> {
        if !self.field.contains(p) {
            return None;
        }
        let fx = (p.x - self.field.min.x) / self.field.width();
        let fy = (p.y - self.field.min.y) / self.field.height();
        let cx = ((fx * self.cols as f64) as usize).min(self.cols - 1);
        // Row 0 renders at the top: flip y.
        let cy = self.rows - 1 - ((fy * self.rows as f64) as usize).min(self.rows - 1);
        Some(cy * self.cols + cx)
    }

    /// Plots a single character at a field position (no-op outside).
    pub fn draw_point(&mut self, p: Point, glyph: char) {
        if let Some(i) = self.index_of(p) {
            self.cells[i] = glyph;
        }
    }

    /// Plots every node of a topology (dead nodes render as `x`).
    pub fn draw_nodes(&mut self, topology: &Topology, glyph: char) {
        for node in topology.nodes() {
            let g = if topology.is_alive(node.id) { glyph } else { 'x' };
            self.draw_point(node.position, g);
        }
    }

    /// Fills an axis-aligned region with a glyph (background layer).
    pub fn fill_region(&mut self, region: Rect, glyph: char) {
        for row in 0..self.rows {
            for col in 0..self.cols {
                let p = self.cell_center(col, row);
                if region.contains(p) {
                    self.cells[row * self.cols + col] = glyph;
                }
            }
        }
    }

    /// Traces a route as a sequence of node positions.
    pub fn draw_route(&mut self, topology: &Topology, path: &[NodeId], glyph: char) {
        for w in path.windows(2) {
            let a = topology.position(w[0]);
            let b = topology.position(w[1]);
            // Sample along the segment densely enough to hit every cell.
            let steps = (2 * self.cols.max(self.rows)) as f64;
            for s in 0..=steps as usize {
                let t = s as f64 / steps;
                self.draw_point(Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)), glyph);
            }
        }
        if let Some(&first) = path.first() {
            self.draw_point(topology.position(first), 'S');
        }
        if let Some(&last) = path.last() {
            self.draw_point(topology.position(last), 'D');
        }
    }

    /// The field position at the center of character cell `(col, row)`.
    fn cell_center(&self, col: usize, row: usize) -> Point {
        let fx = (col as f64 + 0.5) / self.cols as f64;
        let fy = 1.0 - (row as f64 + 0.5) / self.rows as f64;
        Point::new(
            self.field.min.x + fx * self.field.width(),
            self.field.min.y + fy * self.field.height(),
        )
    }

    /// Renders the canvas to a newline-separated string.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in 0..self.rows {
            for col in 0..self.cols {
                out.push(self.cells[row * self.cols + col]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};
    use crate::node::Node;

    #[test]
    fn point_lands_in_expected_quadrant() {
        let mut canvas = Canvas::new(Rect::square(10.0), 10, 10);
        canvas.draw_point(Point::new(9.9, 9.9), '#'); // top-right
        let art = canvas.render();
        let first_line = art.lines().next().unwrap();
        assert_eq!(first_line.chars().last(), Some('#'));
    }

    #[test]
    fn y_axis_is_flipped_for_display() {
        let mut canvas = Canvas::new(Rect::square(10.0), 4, 4);
        canvas.draw_point(Point::new(0.1, 0.1), 'B'); // bottom-left
        let art = canvas.render();
        let last_line = art.lines().last().unwrap();
        assert_eq!(last_line.chars().next(), Some('B'));
    }

    #[test]
    fn out_of_field_points_are_ignored() {
        let mut canvas = Canvas::new(Rect::square(10.0), 4, 4);
        canvas.draw_point(Point::new(-1.0, 5.0), '#');
        canvas.draw_point(Point::new(11.0, 5.0), '#');
        assert!(!canvas.render().contains('#'));
    }

    #[test]
    fn region_fill_covers_inside_only() {
        let mut canvas = Canvas::new(Rect::square(10.0), 10, 10);
        canvas.fill_region(Rect::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)), '1');
        let art = canvas.render();
        let ones = art.chars().filter(|&c| c == '1').count();
        assert!((15..=35).contains(&ones), "filled {ones} of 100 cells for a quarter region");
    }

    #[test]
    fn dead_nodes_render_differently() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(2.0, 2.0)),
            Node::new(NodeId(1), Point::new(8.0, 8.0)),
        ];
        let topo = Topology::build(nodes, 20.0).unwrap().without_nodes(&[NodeId(1)]);
        let mut canvas = Canvas::new(Rect::square(10.0), 20, 20);
        canvas.draw_nodes(&topo, '.');
        let art = canvas.render();
        assert!(art.contains('.'));
        assert!(art.contains('x'));
    }

    #[test]
    fn route_has_source_and_destination_markers() {
        let nodes = Deployment::new(Rect::square(50.0), 30, Placement::Uniform, 3).nodes();
        let topo = Topology::build(nodes, 25.0).unwrap();
        let mut canvas = Canvas::terminal(Rect::square(50.0));
        canvas.draw_route(&topo, &[NodeId(0), NodeId(1), NodeId(2)], '*');
        let art = canvas.render();
        assert!(art.contains('S') && art.contains('D'));
    }

    #[test]
    fn terminal_canvas_has_sane_aspect() {
        let c = Canvas::terminal(Rect::square(100.0));
        assert_eq!(c.cols, 72);
        assert_eq!(c.rows, 36);
    }
}
