//! Radio link quality beyond the unit disk.
//!
//! The paper (like GPSR and DIM) evaluates over an ideal unit-disk radio.
//! Real low-power radios have a *transitional region*: packet reception
//! ratio (PRR) is near 1 close in, near 0 far out, and noisy in between.
//! This module provides a standard logistic PRR model and the expected
//! transmission count (ETX) arithmetic used to translate ideal hop counts
//! into expected message counts under loss and retransmission — the
//! `lossy_radio` ablation prices the paper's results on a realistic link
//! layer without changing any protocol logic.

use crate::node::NodeId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A logistic packet-reception-ratio model.
///
/// `prr(d) ≈ 1` for `d ≤ inner`, `≈ 0` for `d ≥ outer`, smooth logistic in
/// between (midpoint at `(inner + outer) / 2`).
///
/// # Examples
///
/// ```
/// use pool_netsim::radio::PrrModel;
///
/// let model = PrrModel::new(20.0, 40.0);
/// assert!(model.prr(5.0) > 0.95);
/// assert!(model.prr(39.0) < 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrrModel {
    /// Distance up to which reception is essentially perfect (m).
    pub inner: f64,
    /// Distance beyond which reception is essentially impossible (m).
    pub outer: f64,
}

impl PrrModel {
    /// Creates the model, or reports why the radii are invalid.
    ///
    /// This is the single validation point: every constructor goes through
    /// it, so `inner >= outer` (and non-positive `inner`) is rejected
    /// uniformly with the same message.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation unless `0 < inner < outer`.
    pub fn try_new(inner: f64, outer: f64) -> Result<Self, String> {
        if inner > 0.0 && outer > inner {
            Ok(PrrModel { inner, outer })
        } else {
            Err(format!("need 0 < inner < outer, got inner={inner}, outer={outer}"))
        }
    }

    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < inner < outer`.
    pub fn new(inner: f64, outer: f64) -> Self {
        match Self::try_new(inner, outer) {
            Ok(model) => model,
            Err(reason) => panic!("{reason}"),
        }
    }

    /// The ideal unit-disk limit: a sharp cliff just inside `range`.
    pub fn ideal(range: f64) -> Self {
        PrrModel::new(range * 0.999, range)
    }

    /// Packet reception ratio at link distance `d`.
    ///
    /// Exactly 1.0 for `d ≤ inner` and exactly 0.0 for `d ≥ outer`; the
    /// logistic transition strictly between is clamped to `[ε, 1]` so the
    /// transitional region never reports an outright-dead link.
    pub fn prr(&self, d: f64) -> f64 {
        if d <= self.inner {
            return 1.0;
        }
        if d >= self.outer {
            return 0.0;
        }
        let mid = (self.inner + self.outer) / 2.0;
        // Width chosen so prr(inner) ≈ 0.98 and prr(outer) ≈ 0.02.
        let width = (self.outer - self.inner) / 8.0;
        let raw = 1.0 / (1.0 + ((d - mid) / width).exp());
        raw.clamp(1e-3, 1.0)
    }

    /// Expected transmissions to get one packet across a link of distance
    /// `d` with per-transmission success `prr` (geometric retries,
    /// link-layer ARQ without acknowledgment loss). The reception ratio is
    /// floored at `ε = 1e-3` here so ETX stays finite even at `d = outer`.
    pub fn etx(&self, d: f64) -> f64 {
        1.0 / self.prr(d).max(1e-3)
    }
}

/// Expected transmissions to deliver a packet along `path` under `model`,
/// with per-hop retransmission until success.
///
/// Equals the hop count for a perfect radio; strictly larger whenever any
/// hop stretches into the transitional region.
///
/// # Panics
///
/// Panics if consecutive path entries are not distinct nodes of the
/// topology.
pub fn expected_path_transmissions(topology: &Topology, path: &[NodeId], model: PrrModel) -> f64 {
    path.windows(2)
        .map(|w| if w[0] == w[1] { 0.0 } else { model.etx(topology.distance(w[0], w[1])) })
        .sum()
}

/// Mean ETX over every link of the (unit-disk) topology — the factor by
/// which ideal message counts inflate under this radio.
pub fn mean_link_etx(topology: &Topology, model: PrrModel) -> f64 {
    let mut total = 0.0;
    let mut links = 0usize;
    for node in topology.nodes() {
        for &nb in topology.neighbors(node.id) {
            if nb > node.id {
                total += model.etx(topology.distance(node.id, nb));
                links += 1;
            }
        }
    }
    if links == 0 {
        1.0
    } else {
        total / links as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};
    use crate::geometry::Rect;

    #[test]
    fn prr_is_monotone_decreasing() {
        let m = PrrModel::new(20.0, 40.0);
        let mut last = f64::INFINITY;
        for d in [1.0, 10.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0] {
            let p = m.prr(d);
            assert!(p <= last + 1e-12, "prr not monotone at {d}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn near_links_are_nearly_perfect() {
        let m = PrrModel::new(20.0, 40.0);
        assert!(m.prr(10.0) > 0.99);
        assert!(m.etx(10.0) < 1.02);
    }

    #[test]
    fn far_links_cost_many_transmissions() {
        let m = PrrModel::new(20.0, 40.0);
        assert!(m.etx(38.0) > 2.0);
    }

    #[test]
    fn ideal_model_has_unity_etx_in_range() {
        let m = PrrModel::ideal(40.0);
        assert!((m.etx(20.0) - 1.0).abs() < 0.01);
        assert!((m.etx(35.0) - 1.0).abs() < 0.05);
    }

    #[test]
    fn path_expectation_bounds_hop_count() {
        let nodes = Deployment::new(Rect::square(100.0), 50, Placement::Uniform, 8).nodes();
        let topo = Topology::build(nodes, 35.0).unwrap();
        // Build an arbitrary 3-hop neighbor path.
        let a = topo.nodes()[0].id;
        let b = topo.neighbors(a).first().copied();
        let Some(b) = b else { return };
        let c = topo.neighbors(b).iter().find(|&&x| x != a).copied();
        let Some(c) = c else { return };
        let path = [a, b, c];
        let lossy = expected_path_transmissions(&topo, &path, PrrModel::new(15.0, 35.0));
        assert!(lossy >= 2.0, "2 hops must cost at least 2 expected transmissions, got {lossy}");
        let ideal = expected_path_transmissions(&topo, &path, PrrModel::ideal(35.0));
        assert!(lossy >= ideal);
    }

    #[test]
    fn mean_link_etx_exceeds_one_under_loss() {
        let nodes = Deployment::new(Rect::square(120.0), 80, Placement::Uniform, 9).nodes();
        let topo = Topology::build(nodes, 40.0).unwrap();
        let lossy = mean_link_etx(&topo, PrrModel::new(15.0, 42.0));
        assert!(lossy > 1.0);
        let ideal = mean_link_etx(&topo, PrrModel::ideal(40.0));
        assert!(ideal < lossy);
    }

    #[test]
    #[should_panic(expected = "0 < inner < outer")]
    fn invalid_model_rejected() {
        let _ = PrrModel::new(40.0, 20.0);
    }

    #[test]
    #[should_panic(expected = "0 < inner < outer")]
    fn equal_radii_rejected() {
        let _ = PrrModel::new(30.0, 30.0);
    }

    #[test]
    fn try_new_rejects_every_invalid_shape_uniformly() {
        for (inner, outer) in [(40.0, 20.0), (30.0, 30.0), (0.0, 10.0), (-5.0, 10.0)] {
            let err = PrrModel::try_new(inner, outer).unwrap_err();
            assert!(err.contains("0 < inner < outer"), "({inner}, {outer}): {err}");
        }
        assert!(PrrModel::try_new(20.0, 40.0).is_ok());
    }

    #[test]
    fn prr_is_pinned_at_the_radii() {
        let m = PrrModel::new(20.0, 40.0);
        assert_eq!(m.prr(20.0), 1.0, "prr at d == inner is exactly 1");
        assert_eq!(m.prr(10.0), 1.0, "prr inside inner is exactly 1");
        assert_eq!(m.prr(40.0), 0.0, "prr at d == outer is exactly 0");
        assert_eq!(m.prr(50.0), 0.0, "prr beyond outer is exactly 0");
        // Strictly inside the transition the clamp keeps links usable.
        let just_inside = m.prr(39.999);
        assert!((1e-3..1.0).contains(&just_inside));
        let just_past_inner = m.prr(20.001);
        assert!(just_past_inner < 1.0 && just_past_inner > 0.9);
        // ETX stays finite even where prr is pinned to zero.
        assert!(m.etx(40.0).is_finite());
    }
}
