//! Message and load accounting.
//!
//! The paper's cost metric is the **number of messages** exchanged while
//! processing a query (forwarding to the relevant index nodes plus returning
//! the qualifying events, §5). [`TrafficStats`] records every per-hop
//! transmission so experiments can report totals, per-node load, and hotspot
//! indicators.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Accumulates per-hop message transmissions.
///
/// Every radio transmission between two distinct nodes counts as one
/// message. Hops from a node to itself (e.g. when several grid cells map to
/// the same physical sensor) are free, matching the physical intuition that
/// no radio message is needed.
///
/// # Examples
///
/// ```
/// use pool_netsim::node::NodeId;
/// use pool_netsim::stats::TrafficStats;
///
/// let mut stats = TrafficStats::new(4);
/// stats.record_path(&[NodeId(0), NodeId(1), NodeId(2)]);
/// stats.record_hop(NodeId(2), NodeId(2)); // self-hop: free
/// assert_eq!(stats.total_messages(), 2);
/// assert_eq!(stats.load(NodeId(1)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    sent: u64,
    per_node: Vec<u64>,
}

impl TrafficStats {
    /// Creates a ledger for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        TrafficStats { sent: 0, per_node: vec![0; n] }
    }

    /// Records one transmission from `from` to `to`. A self-hop is ignored.
    pub fn record_hop(&mut self, from: NodeId, to: NodeId) {
        if from == to {
            return;
        }
        self.sent += 1;
        self.per_node[from.index()] += 1;
    }

    /// Records every hop along `path` (consecutive node pairs).
    pub fn record_path(&mut self, path: &[NodeId]) {
        for w in path.windows(2) {
            self.record_hop(w[0], w[1]);
        }
    }

    /// Total messages recorded.
    pub fn total_messages(&self) -> u64 {
        self.sent
    }

    /// Messages sent by `id`.
    pub fn load(&self, id: NodeId) -> u64 {
        self.per_node[id.index()]
    }

    /// The largest per-node send count (hotspot indicator).
    pub fn max_load(&self) -> u64 {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// Per-node send counts.
    pub fn per_node(&self) -> &[u64] {
        &self.per_node
    }

    /// Adds all counts from `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two ledgers track networks of different sizes.
    pub fn merge(&mut self, other: &TrafficStats) {
        assert_eq!(
            self.per_node.len(),
            other.per_node.len(),
            "cannot merge ledgers of different network sizes"
        );
        self.sent += other.sent;
        for (a, b) in self.per_node.iter_mut().zip(&other.per_node) {
            *a += *b;
        }
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        self.sent = 0;
        self.per_node.iter_mut().for_each(|c| *c = 0);
    }

    /// Grows the ledger to track `n` nodes, appending zeroed counters for
    /// the joiners. A no-op when the ledger already covers `n` nodes;
    /// existing counts are never touched (ids are dense, so history stays
    /// attributed correctly).
    pub fn grow_to(&mut self, n: usize) {
        if n > self.per_node.len() {
            self.per_node.resize(n, 0);
        }
    }
}

/// Summary statistics over a sample of scalar observations (per-query
/// message counts, per-node loads, ...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile (tail latency's favourite quantile).
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`. Samples are ordered by
    /// [`f64::total_cmp`], so NaN observations sort after every finite
    /// value (they surface in `max`/`p99` rather than panicking) and
    /// `-0.0` orders before `+0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample set");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (n as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_and_paths_accumulate() {
        let mut s = TrafficStats::new(3);
        s.record_path(&[NodeId(0), NodeId(1), NodeId(2), NodeId(1)]);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.load(NodeId(1)), 1);
        assert_eq!(s.load(NodeId(2)), 1);
        assert_eq!(s.max_load(), 1);
    }

    #[test]
    fn self_hops_are_free() {
        let mut s = TrafficStats::new(2);
        s.record_hop(NodeId(0), NodeId(0));
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TrafficStats::new(2);
        a.record_hop(NodeId(0), NodeId(1));
        let mut b = TrafficStats::new(2);
        b.record_hop(NodeId(1), NodeId(0));
        b.record_hop(NodeId(0), NodeId(1));
        a.merge(&b);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.load(NodeId(0)), 2);
        assert_eq!(a.load(NodeId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "different network sizes")]
    fn merge_rejects_size_mismatch() {
        let mut a = TrafficStats::new(2);
        a.merge(&TrafficStats::new(3));
    }

    #[test]
    fn grow_to_preserves_history() {
        let mut s = TrafficStats::new(2);
        s.record_hop(NodeId(0), NodeId(1));
        s.grow_to(4);
        s.grow_to(1); // no-op: never shrinks
        assert_eq!(s.per_node().len(), 4);
        assert_eq!(s.total_messages(), 1);
        assert_eq!(s.load(NodeId(0)), 1);
        assert_eq!(s.load(NodeId(3)), 0);
        s.record_hop(NodeId(3), NodeId(0));
        assert_eq!(s.load(NodeId(3)), 1);
    }

    #[test]
    fn clear_resets() {
        let mut s = TrafficStats::new(2);
        s.record_hop(NodeId(0), NodeId(1));
        s.clear();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.max_load(), 0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::of(&[0.0, 10.0]);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p95, 9.5);
        assert_eq!(s.p99, 9.9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    /// Regression: the sort used `partial_cmp().expect(...)`, which panics
    /// on NaN and gives `-0.0 == +0.0` an unstable order. `total_cmp`
    /// orders both totally.
    #[test]
    fn summary_totally_orders_nan_and_negative_zero() {
        let s = Summary::of(&[2.0, f64::NAN, 1.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0, "finite minimum survives a NaN sample");
        assert!(s.max.is_nan(), "NaN sorts after every finite value");
        let z = Summary::of(&[0.0, -0.0]);
        assert!(z.min.is_sign_negative(), "-0.0 orders before +0.0");
        assert!(z.max.is_sign_positive());
        assert_eq!(z.mean, 0.0);
    }
}
