//! Error types for the simulation substrate.

use crate::node::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised while building or operating a simulated sensor network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetsimError {
    /// A deployment was requested with zero nodes.
    EmptyDeployment,
    /// The requested average node degree cannot be realized (non-positive).
    InvalidDensity {
        /// The offending target average degree.
        target_degree: f64,
    },
    /// The radio range is non-positive or not finite.
    InvalidRadioRange {
        /// The offending radio range in meters.
        range: f64,
    },
    /// A node id outside the deployed network was referenced.
    UnknownNode {
        /// The offending id.
        id: NodeId,
    },
    /// The deployed unit-disk graph is not connected, so network-wide
    /// routing guarantees do not hold.
    Disconnected {
        /// Number of nodes in the largest connected component.
        largest_component: usize,
        /// Total number of deployed nodes.
        total: usize,
    },
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::EmptyDeployment => write!(f, "deployment must contain at least one node"),
            NetsimError::InvalidDensity { target_degree } => {
                write!(f, "target average degree must be positive, got {target_degree}")
            }
            NetsimError::InvalidRadioRange { range } => {
                write!(f, "radio range must be positive and finite, got {range}")
            }
            NetsimError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            NetsimError::Disconnected { largest_component, total } => write!(
                f,
                "network is disconnected: largest component has {largest_component} of {total} nodes"
            ),
        }
    }
}

impl Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetsimError::InvalidRadioRange { range: -1.0 };
        assert!(e.to_string().contains("radio range"));
        let e = NetsimError::Disconnected { largest_component: 3, total: 10 };
        assert!(e.to_string().contains("3 of 10"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetsimError>();
    }
}
