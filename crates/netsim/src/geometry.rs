//! Planar geometry primitives used throughout the simulator.
//!
//! All coordinates are in meters in a Euclidean plane. The sensor field is a
//! rectangle with its origin at the lower-left corner, `x` growing to the
//! right (east) and `y` growing upward (north).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point (or position vector) in the deployment plane, in meters.
///
/// # Examples
///
/// ```
/// use pool_netsim::geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// ```
    /// # use pool_netsim::geometry::Point;
    /// assert_eq!(Point::new(1.0, 1.0).distance(Point::new(1.0, 3.0)), 2.0);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Angle of the vector from `self` to `other`, in radians in `(-π, π]`.
    pub fn angle_to(self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// Vector difference `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// 2-D cross product (z component) of the vectors `self` and `other`
    /// treated as position vectors.
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, typically the deployment field.
///
/// The rectangle spans `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `min.x > max.x` or `min.y > max.y`.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rect corners out of order: min={min}, max={max}"
        );
        Rect { min, max }
    }

    /// A square field `[0, side] × [0, side]`.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::new(0.0, 0.0), Point::new(side, side))
    }

    /// Width (extent along x) in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (extent along y) in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the rectangle (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the closest point inside the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    CounterClockwise,
    /// Clockwise turn.
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Computes the orientation of the ordered point triple `(a, b, c)`.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b.sub(a)).cross(c.sub(a));
    if v > f64::EPSILON {
        Orientation::CounterClockwise
    } else if v < -f64::EPSILON {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Whether the closed segments `a1–a2` and `b1–b2` properly intersect,
/// excluding intersections that occur exactly at a shared endpoint.
///
/// Perimeter-mode GPSR uses this to detect when a forwarded packet would
/// cross the line between its source and destination, which triggers a face
/// change.
pub fn segments_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    // Shared endpoints do not count as crossings: a perimeter walk that
    // merely touches the source-destination line at a node should not
    // trigger a face change.
    let share = |p: Point, q: Point| p.distance_sq(q) < 1e-18;
    if share(a1, b1) || share(a1, b2) || share(a2, b1) || share(a2, b2) {
        return false;
    }
    let o1 = orientation(a1, a2, b1);
    let o2 = orientation(a1, a2, b2);
    let o3 = orientation(b1, b2, a1);
    let o4 = orientation(b1, b2, a2);
    if o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear {
        return true;
    }
    // Collinear overlap cases.
    let on_segment = |p: Point, q: Point, r: Point| {
        orientation(p, q, r) == Orientation::Collinear
            && r.x >= p.x.min(q.x)
            && r.x <= p.x.max(q.x)
            && r.y >= p.y.min(q.y)
            && r.y <= p.y.max(q.y)
    };
    on_segment(a1, a2, b1)
        || on_segment(a1, a2, b2)
        || on_segment(b1, b2, a1)
        || on_segment(b1, b2, a2)
}

/// Intersection point of the (infinite) lines through `a1–a2` and `b1–b2`,
/// or `None` if they are parallel.
pub fn line_intersection(a1: Point, a2: Point, b1: Point, b2: Point) -> Option<Point> {
    let d1 = a2.sub(a1);
    let d2 = b2.sub(b1);
    let denom = d1.cross(d2);
    if denom.abs() < f64::EPSILON {
        return None;
    }
    let t = (b1.sub(a1)).cross(d2) / denom;
    Some(Point::new(a1.x + t * d1.x, a1.y + t * d1.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(-1.0, 0.5);
        let b = Point::new(2.0, -3.5);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 4.0));
        assert_eq!(m, Point::new(1.0, 2.0));
    }

    #[test]
    fn angle_to_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((o.angle_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.angle_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.angle_to(Point::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 10.0)));
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-3.0, 12.0)), Point::new(0.0, 10.0));
        assert_eq!(r.area(), 100.0);
        assert_eq!(r.center(), Point::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "rect corners out of order")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn orientation_turns() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(orientation(a, b, Point::new(1.0, 1.0)), Orientation::CounterClockwise);
        assert_eq!(orientation(a, b, Point::new(1.0, -1.0)), Orientation::Clockwise);
        assert_eq!(orientation(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn crossing_segments_detected() {
        let cross = segments_cross(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        );
        assert!(cross);
    }

    #[test]
    fn parallel_segments_do_not_cross() {
        assert!(!segments_cross(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0),
        ));
    }

    #[test]
    fn shared_endpoint_is_not_a_crossing() {
        assert!(!segments_cross(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ));
    }

    #[test]
    fn collinear_overlap_counts_as_crossing() {
        assert!(segments_cross(
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ));
    }

    #[test]
    fn line_intersection_basic() {
        let p = line_intersection(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        )
        .unwrap();
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
        assert!(line_intersection(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0)
        )
        .is_none());
    }
}
