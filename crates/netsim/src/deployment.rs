//! Node deployment: placing sensors in the field.
//!
//! The paper's evaluation (§5.1) places nodes uniformly at random in a square
//! field sized so that each node has on average 20 neighbors within its 40 m
//! radio range. [`field_side_for`] computes that field size; the
//! [`Deployment`] type produces the actual node positions from a seeded RNG
//! so every experiment is reproducible.

use crate::error::NetsimError;
use crate::geometry::{Point, Rect};
use crate::node::{Node, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Side length (m) of the square field in which `n` uniformly-placed nodes
/// have `avg_neighbors` other nodes within `radio_range` meters on average.
///
/// With spatial density `ρ = n / side²`, the expected number of other nodes
/// in a disk of radius `r` is `ρ·π·r²` (ignoring edge effects), so
/// `side = r·sqrt(n·π / avg_neighbors)`.
///
/// # Errors
///
/// Returns [`NetsimError::InvalidDensity`] if `avg_neighbors <= 0`, and
/// [`NetsimError::InvalidRadioRange`] if `radio_range` is not positive and
/// finite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pool_netsim::error::NetsimError> {
/// // The paper's setting: 900 nodes, 40 m range, ~20 neighbors.
/// let side = pool_netsim::deployment::field_side_for(900, 40.0, 20.0)?;
/// assert!((side - 475.0).abs() < 2.0);
/// # Ok(())
/// # }
/// ```
pub fn field_side_for(n: usize, radio_range: f64, avg_neighbors: f64) -> Result<f64, NetsimError> {
    if n == 0 {
        return Err(NetsimError::EmptyDeployment);
    }
    if !(radio_range.is_finite() && radio_range > 0.0) {
        return Err(NetsimError::InvalidRadioRange { range: radio_range });
    }
    if avg_neighbors <= 0.0 {
        return Err(NetsimError::InvalidDensity { target_degree: avg_neighbors });
    }
    Ok(radio_range * (n as f64 * std::f64::consts::PI / avg_neighbors).sqrt())
}

/// How node positions are drawn within the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Independently uniform over the whole field (the paper's setting).
    Uniform,
    /// One node per cell of a `⌈√n⌉ × ⌈√n⌉` grid, jittered uniformly within
    /// the cell. Gives more even coverage; useful for stress-testing index
    /// placement without disconnected pockets.
    GridJitter,
}

/// A reproducible node deployment inside a rectangular field.
///
/// # Examples
///
/// ```
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
///
/// let field = Rect::square(100.0);
/// let nodes = Deployment::new(field, 50, Placement::Uniform, 42).nodes();
/// assert_eq!(nodes.len(), 50);
/// assert!(nodes.iter().all(|n| field.contains(n.position)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    field: Rect,
    count: usize,
    placement: Placement,
    seed: u64,
}

impl Deployment {
    /// Describes a deployment of `count` nodes in `field` using `placement`,
    /// deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(field: Rect, count: usize, placement: Placement, seed: u64) -> Self {
        assert!(count > 0, "deployment must contain at least one node");
        Deployment { field, count, placement, seed }
    }

    /// The deployment field.
    pub fn field(&self) -> Rect {
        self.field
    }

    /// The number of nodes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Materializes the node list. Calling this repeatedly yields identical
    /// positions (the generator is re-seeded each time).
    pub fn nodes(&self) -> Vec<Node> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.placement {
            Placement::Uniform => (0..self.count)
                .map(|i| {
                    let x = rng.gen_range(self.field.min.x..=self.field.max.x);
                    let y = rng.gen_range(self.field.min.y..=self.field.max.y);
                    Node::new(NodeId(i as u32), Point::new(x, y))
                })
                .collect(),
            Placement::GridJitter => {
                let cols = (self.count as f64).sqrt().ceil() as usize;
                let rows = self.count.div_ceil(cols);
                let cw = self.field.width() / cols as f64;
                let ch = self.field.height() / rows as f64;
                (0..self.count)
                    .map(|i| {
                        let cx = (i % cols) as f64;
                        let cy = (i / cols) as f64;
                        let x = self.field.min.x + cx * cw + rng.gen_range(0.0..cw);
                        let y = self.field.min.y + cy * ch + rng.gen_range(0.0..ch);
                        Node::new(NodeId(i as u32), self.field.clamp(Point::new(x, y)))
                    })
                    .collect()
            }
        }
    }

    /// Convenience constructor matching the paper's §5.1 setting: `n` nodes
    /// placed uniformly in a square sized so the average neighborhood within
    /// `radio_range` holds `avg_neighbors` nodes.
    ///
    /// # Errors
    ///
    /// Propagates the parameter validation of [`field_side_for`].
    pub fn paper_setting(
        n: usize,
        radio_range: f64,
        avg_neighbors: f64,
        seed: u64,
    ) -> Result<Self, NetsimError> {
        let side = field_side_for(n, radio_range, avg_neighbors)?;
        Ok(Deployment::new(Rect::square(side), n, Placement::Uniform, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_side_matches_density_formula() {
        let side = field_side_for(900, 40.0, 20.0).unwrap();
        let density = 900.0 / (side * side);
        let expected_neighbors = density * std::f64::consts::PI * 40.0 * 40.0;
        assert!((expected_neighbors - 20.0).abs() < 1e-9);
    }

    #[test]
    fn field_side_rejects_bad_parameters() {
        assert!(matches!(field_side_for(0, 40.0, 20.0), Err(NetsimError::EmptyDeployment)));
        assert!(matches!(
            field_side_for(10, -1.0, 20.0),
            Err(NetsimError::InvalidRadioRange { .. })
        ));
        assert!(matches!(field_side_for(10, 40.0, 0.0), Err(NetsimError::InvalidDensity { .. })));
    }

    #[test]
    fn deployment_is_deterministic() {
        let d = Deployment::new(Rect::square(100.0), 25, Placement::Uniform, 7);
        assert_eq!(d.nodes(), d.nodes());
    }

    #[test]
    fn different_seeds_differ() {
        let f = Rect::square(100.0);
        let a = Deployment::new(f, 25, Placement::Uniform, 1).nodes();
        let b = Deployment::new(f, 25, Placement::Uniform, 2).nodes();
        assert_ne!(a, b);
    }

    #[test]
    fn all_nodes_inside_field() {
        for placement in [Placement::Uniform, Placement::GridJitter] {
            let f = Rect::square(50.0);
            let nodes = Deployment::new(f, 40, placement, 3).nodes();
            assert_eq!(nodes.len(), 40);
            assert!(nodes.iter().all(|n| f.contains(n.position)));
        }
    }

    #[test]
    fn node_ids_are_dense() {
        let nodes = Deployment::new(Rect::square(10.0), 5, Placement::Uniform, 0).nodes();
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.index(), i);
        }
    }

    #[test]
    fn grid_jitter_spreads_nodes() {
        // With grid jitter, the left and right halves should each contain a
        // reasonable share of nodes.
        let f = Rect::square(100.0);
        let nodes = Deployment::new(f, 64, Placement::GridJitter, 11).nodes();
        let left = nodes.iter().filter(|n| n.position.x < 50.0).count();
        assert!(left > 16 && left < 48, "left half had {left} of 64");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_count_panics() {
        let _ = Deployment::new(Rect::square(1.0), 0, Placement::Uniform, 0);
    }

    #[test]
    fn paper_setting_has_expected_degree() {
        let d = Deployment::paper_setting(900, 40.0, 20.0, 5).unwrap();
        let nodes = d.nodes();
        // Empirical mean degree should be near 20 (edge effects push it a
        // little lower).
        let mut total = 0usize;
        for a in &nodes {
            total += nodes
                .iter()
                .filter(|b| b.id != a.id && a.position.distance(b.position) <= 40.0)
                .count();
        }
        let mean = total as f64 / nodes.len() as f64;
        assert!(mean > 15.0 && mean < 22.0, "mean degree {mean}");
    }
}
