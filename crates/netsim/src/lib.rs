//! # pool-netsim — wireless sensor network simulation substrate
//!
//! The simulation substrate underneath the Pool reproduction: everything the
//! ICDCS 2007 paper's custom simulator provided, built from scratch.
//!
//! * [`geometry`] — planar points, rectangles, segment predicates.
//! * [`node`] — node identity and positions (nodes know their location, §2).
//! * [`deployment`] — uniform random placement sized to the paper's density
//!   (40 m radio range, ~20 neighbors on average, §5.1).
//! * [`topology`] — unit-disk neighbor tables and spatial queries.
//! * [`schedule`] — the deterministic discrete-event queue that serves as
//!   the virtual clock of record for the latency-aware execution layer.
//! * [`stats`] — the paper's cost metric: per-hop message counting.
//! * [`energy`] — first-order radio energy model for lifetime/hotspot
//!   studies and the workload-sharing trigger.
//!
//! # Examples
//!
//! Build the paper's 900-node setting and check its density:
//!
//! ```
//! use pool_netsim::deployment::Deployment;
//! use pool_netsim::topology::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let deployment = Deployment::paper_setting(900, 40.0, 20.0, 42)?;
//! let topology = Topology::build(deployment.nodes(), 40.0)?;
//! assert!(topology.mean_degree() > 15.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod deployment;
pub mod energy;
pub mod error;
pub mod exec;
pub mod geometry;
pub mod node;
pub mod radio;
pub mod render;
pub mod schedule;
pub mod stats;
pub mod topology;

pub use deployment::{Deployment, Placement};
pub use error::NetsimError;
pub use geometry::{Point, Rect};
pub use node::{Node, NodeId};
pub use stats::{Summary, TrafficStats};
pub use topology::Topology;
