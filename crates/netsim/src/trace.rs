//! Message traces: a flight recorder for the discrete-event simulator.
//!
//! When tracing is enabled ([`crate::sim::Simulator::with_tracing`]), every
//! delivery is logged as a [`TraceEntry`]. Traces support debugging
//! protocol behaviour (who talked to whom, when) and computing metrics the
//! aggregate ledgers cannot, like per-flow latency.

use crate::node::NodeId;
use crate::schedule::SimTime;
use serde::{Deserialize, Serialize};

/// One delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulated delivery time in seconds.
    pub time: SimTime,
    /// Transmitting node (equals `to` for local injections).
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

/// An ordered log of deliveries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends a delivery.
    pub fn record(&mut self, time: SimTime, from: NodeId, to: NodeId) {
        self.entries.push(TraceEntry { time, from, to });
    }

    /// All entries in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of logged deliveries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries within the half-open time window `[start, end)`.
    pub fn between(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.time >= start && e.time < end)
    }

    /// Number of radio transmissions by `node` (injections excluded).
    pub fn sends_by(&self, node: NodeId) -> usize {
        self.entries.iter().filter(|e| e.from == node && e.from != e.to).count()
    }

    /// Simulated time of the last delivery (0.0 when empty).
    pub fn makespan(&self) -> SimTime {
        self.entries.last().map_or(0.0, |e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut log = TraceLog::new();
        log.record(0.0, NodeId(0), NodeId(0)); // injection
        log.record(0.001, NodeId(0), NodeId(1));
        log.record(0.002, NodeId(1), NodeId(2));
        assert_eq!(log.len(), 3);
        assert_eq!(log.sends_by(NodeId(0)), 1, "injection is not a send");
        assert_eq!(log.between(0.0005, 0.0015).count(), 1);
        assert_eq!(log.makespan(), 0.002);
    }

    #[test]
    fn empty_log_behaves() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        assert_eq!(log.makespan(), 0.0);
        assert_eq!(log.sends_by(NodeId(0)), 0);
    }
}
