//! A simple radio energy model.
//!
//! The paper motivates Pool by energy efficiency: fewer messages mean less
//! energy drawn from sensor batteries. This module converts the message
//! ledger into joules using a first-order radio model (cost per transmitted
//! and received message) so experiments can also report energy and estimated
//! network lifetime, and so the workload-sharing mechanism can decide when an
//! index node's "remaining resource is below a certain threshold" (§4.2).

use crate::node::NodeId;
use crate::stats::TrafficStats;
use serde::{Deserialize, Serialize};

/// First-order radio energy model: a fixed energy cost per message sent and
/// per message received.
///
/// Defaults follow the common first-order model used in the WSN literature
/// (50 nJ/bit electronics at both ends plus amplifier cost, for a nominal
/// 1 kbit message at 40 m): roughly 100 µJ to transmit and 50 µJ to receive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy to transmit one message, in joules.
    pub tx_cost: f64,
    /// Energy to receive one message, in joules.
    pub rx_cost: f64,
}

impl EnergyModel {
    /// Creates a model with the given per-message costs (joules).
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or not finite.
    pub fn new(tx_cost: f64, rx_cost: f64) -> Self {
        assert!(tx_cost.is_finite() && tx_cost >= 0.0, "invalid tx cost {tx_cost}");
        assert!(rx_cost.is_finite() && rx_cost >= 0.0, "invalid rx cost {rx_cost}");
        EnergyModel { tx_cost, rx_cost }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel { tx_cost: 100e-6, rx_cost: 50e-6 }
    }
}

/// Tracks the remaining battery energy of every node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    model: EnergyModel,
    capacity: f64,
    remaining: Vec<f64>,
}

impl EnergyLedger {
    /// Creates a ledger for `n` nodes, each starting with `capacity` joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn new(n: usize, capacity: f64, model: EnergyModel) -> Self {
        assert!(capacity.is_finite() && capacity > 0.0, "invalid battery capacity {capacity}");
        EnergyLedger { model, capacity, remaining: vec![capacity; n] }
    }

    /// Charges one transmitted message to `from` and one received message to
    /// `to`. Self-hops are free (no radio involved).
    pub fn charge_hop(&mut self, from: NodeId, to: NodeId) {
        if from == to {
            return;
        }
        self.remaining[from.index()] = (self.remaining[from.index()] - self.model.tx_cost).max(0.0);
        self.remaining[to.index()] = (self.remaining[to.index()] - self.model.rx_cost).max(0.0);
    }

    /// Charges every hop of a recorded traffic ledger. Receivers are not
    /// tracked per-hop by [`TrafficStats`], so this charges tx to the sender
    /// counts and rx matching the aggregate (one receive per send).
    pub fn charge_traffic(&mut self, traffic: &TrafficStats) {
        for (i, &sends) in traffic.per_node().iter().enumerate() {
            self.remaining[i] = (self.remaining[i] - sends as f64 * self.model.tx_cost).max(0.0);
        }
    }

    /// Charges exact per-node transmit and receive counts, as produced by
    /// the virtual clock (which, unlike [`TrafficStats`], observes the
    /// receiving end of every transmission — retransmissions included).
    ///
    /// # Panics
    ///
    /// Panics if the count slices disagree with the ledger's node count.
    pub fn charge_counts(&mut self, tx: &[u64], rx: &[u64]) {
        assert_eq!(tx.len(), self.remaining.len(), "tx counts for a different network size");
        assert_eq!(rx.len(), self.remaining.len(), "rx counts for a different network size");
        for (i, (&sent, &received)) in tx.iter().zip(rx).enumerate() {
            let drain = sent as f64 * self.model.tx_cost + received as f64 * self.model.rx_cost;
            self.remaining[i] = (self.remaining[i] - drain).max(0.0);
        }
    }

    /// Remaining energy of node `id` in joules.
    pub fn remaining(&self, id: NodeId) -> f64 {
        self.remaining[id.index()]
    }

    /// Remaining energy as a fraction of initial capacity, in `[0, 1]`.
    pub fn remaining_fraction(&self, id: NodeId) -> f64 {
        self.remaining(id) / self.capacity
    }

    /// Whether `id`'s remaining fraction is at or below `threshold` — the
    /// trigger condition of the paper's workload-sharing mechanism.
    pub fn is_depleted_below(&self, id: NodeId, threshold: f64) -> bool {
        self.remaining_fraction(id) <= threshold
    }

    /// The minimum remaining fraction over all nodes (the first node to die
    /// determines "network lifetime" in many WSN studies).
    pub fn min_remaining_fraction(&self) -> f64 {
        let min = self.remaining.iter().copied().fold(f64::INFINITY, f64::min);
        min / self.capacity
    }

    /// Grows the ledger to `n` nodes; joiners start with a full battery.
    /// A no-op when the ledger already covers `n` nodes.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.remaining.len() {
            self.remaining.resize(n, self.capacity);
        }
    }

    /// The nodes whose batteries are exhausted (remaining energy is zero),
    /// in ascending id order — the energy-driven death set of a churn epoch.
    pub fn depleted_nodes(&self) -> Vec<NodeId> {
        self.remaining
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r <= 0.0)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_sane() {
        let m = EnergyModel::default();
        assert!(m.tx_cost > m.rx_cost);
    }

    #[test]
    fn charge_hop_decrements_both_ends() {
        let mut ledger = EnergyLedger::new(2, 1.0, EnergyModel::new(0.1, 0.05));
        ledger.charge_hop(NodeId(0), NodeId(1));
        assert!((ledger.remaining(NodeId(0)) - 0.9).abs() < 1e-12);
        assert!((ledger.remaining(NodeId(1)) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn self_hop_costs_nothing() {
        let mut ledger = EnergyLedger::new(1, 1.0, EnergyModel::default());
        ledger.charge_hop(NodeId(0), NodeId(0));
        assert_eq!(ledger.remaining(NodeId(0)), 1.0);
    }

    #[test]
    fn energy_never_goes_negative() {
        let mut ledger = EnergyLedger::new(2, 0.01, EnergyModel::new(1.0, 1.0));
        ledger.charge_hop(NodeId(0), NodeId(1));
        assert_eq!(ledger.remaining(NodeId(0)), 0.0);
    }

    #[test]
    fn depletion_threshold() {
        let mut ledger = EnergyLedger::new(2, 1.0, EnergyModel::new(0.3, 0.0));
        assert!(!ledger.is_depleted_below(NodeId(0), 0.5));
        ledger.charge_hop(NodeId(0), NodeId(1));
        ledger.charge_hop(NodeId(0), NodeId(1));
        assert!(ledger.is_depleted_below(NodeId(0), 0.5));
        assert!((ledger.min_remaining_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn charge_traffic_matches_sends() {
        let mut traffic = TrafficStats::new(2);
        traffic.record_hop(NodeId(0), NodeId(1));
        traffic.record_hop(NodeId(0), NodeId(1));
        let mut ledger = EnergyLedger::new(2, 1.0, EnergyModel::new(0.1, 0.05));
        ledger.charge_traffic(&traffic);
        assert!((ledger.remaining(NodeId(0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn charge_counts_bills_both_ends() {
        let mut ledger = EnergyLedger::new(3, 1.0, EnergyModel::new(0.1, 0.05));
        // Node 0 sent 2 (one was a retransmission), node 1 relayed 1;
        // node 1 heard 2, node 2 heard 1.
        ledger.charge_counts(&[2, 1, 0], &[0, 2, 1]);
        assert!((ledger.remaining(NodeId(0)) - 0.8).abs() < 1e-12);
        assert!((ledger.remaining(NodeId(1)) - 0.8).abs() < 1e-12);
        assert!((ledger.remaining(NodeId(2)) - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different network size")]
    fn charge_counts_rejects_size_mismatch() {
        let mut ledger = EnergyLedger::new(2, 1.0, EnergyModel::default());
        ledger.charge_counts(&[1], &[1]);
    }

    #[test]
    #[should_panic(expected = "invalid battery capacity")]
    fn rejects_bad_capacity() {
        let _ = EnergyLedger::new(1, 0.0, EnergyModel::default());
    }

    #[test]
    fn grow_to_appends_full_batteries() {
        let mut ledger = EnergyLedger::new(2, 1.0, EnergyModel::new(0.4, 0.0));
        ledger.charge_hop(NodeId(0), NodeId(1));
        ledger.grow_to(4);
        ledger.grow_to(3); // no-op: never shrinks
        assert!((ledger.remaining(NodeId(0)) - 0.6).abs() < 1e-12);
        assert_eq!(ledger.remaining(NodeId(2)), 1.0);
        assert_eq!(ledger.remaining(NodeId(3)), 1.0);
        ledger.charge_counts(&[0; 4], &[0; 4]); // sized for the grown network
    }

    #[test]
    fn depleted_nodes_lists_dead_batteries_in_order() {
        let mut ledger = EnergyLedger::new(3, 0.5, EnergyModel::new(1.0, 1.0));
        assert!(ledger.depleted_nodes().is_empty());
        ledger.charge_hop(NodeId(2), NodeId(0));
        assert_eq!(ledger.depleted_nodes(), vec![NodeId(0), NodeId(2)]);
    }
}
