//! Hand-rolled samplers for the distributions the evaluation needs.
//!
//! `rand_distr` is not on this project's dependency allowlist, so the
//! exponential, Zipf, and truncated-normal samplers are implemented from
//! first principles (inverse CDF / rejection) and unit-tested against
//! closed-form moments.

use rand::Rng;

/// Samples `Exp(mean)` via inverse CDF: `-mean · ln(1 - u)`.
///
/// # Panics
///
/// Panics if `mean` is not positive and finite.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use pool_workloads::distributions::sample_exponential;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = sample_exponential(&mut rng, 0.1);
/// assert!(x >= 0.0);
/// ```
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive, got {mean}");
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

/// Samples `Exp(mean)` truncated (by resampling) to `[0, cap]`.
///
/// # Panics
///
/// Panics if `cap <= 0` or `mean` is invalid.
pub fn sample_exponential_capped<R: Rng + ?Sized>(rng: &mut R, mean: f64, cap: f64) -> f64 {
    assert!(cap > 0.0, "cap must be positive, got {cap}");
    loop {
        let x = sample_exponential(rng, mean);
        if x <= cap {
            return x;
        }
    }
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, using a
/// precomputed CDF (exact inverse-CDF sampling).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use pool_workloads::distributions::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(2);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be non-negative, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }
}

/// Samples `N(mean, std_dev²)` via Box–Muller, truncated by resampling to
/// `[lo, hi]`.
///
/// # Panics
///
/// Panics if `std_dev <= 0`, `lo >= hi`, or the truncation window is more
/// than ~8σ from the mean (rejection would effectively never terminate).
pub fn sample_normal_truncated<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(std_dev > 0.0, "std_dev must be positive, got {std_dev}");
    assert!(lo < hi, "invalid truncation window [{lo}, {hi}]");
    // Reject only windows lying *entirely* beyond ~8σ — a mean deep inside
    // a wide window is the easy case, not a divergent one.
    assert!(
        lo <= mean + 8.0 * std_dev && hi >= mean - 8.0 * std_dev,
        "truncation window too far from the mean"
    );
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let x = mean + std_dev * z;
        if x >= lo && x <= hi {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut rng, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "empirical mean {mean}");
    }

    #[test]
    fn exponential_capped_respects_cap() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..2000 {
            let x = sample_exponential_capped(&mut rng, 0.5, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = vec![0usize; 51];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // Theoretical P(1)/P(2) = 2^1.2 ≈ 2.3.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((1.8..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(14);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let p = count as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.01, "rank {k}: {p}");
        }
    }

    #[test]
    fn truncated_normal_stays_in_window() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..2000 {
            let x = sample_normal_truncated(&mut rng, 0.5, 0.2, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_accepts_tight_spread_inside_wide_window() {
        // Regression: a mean deep inside [0, 1] with a small σ used to trip
        // the divergence guard even though rejection terminates immediately.
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..2000 {
            let x = sample_normal_truncated(&mut rng, 0.5, 0.04, 0.0, 1.0);
            assert!((0.3..=0.7).contains(&x), "8σ outlier: {x}");
        }
    }

    #[test]
    #[should_panic(expected = "truncation window too far from the mean")]
    fn truncated_normal_rejects_unreachable_window() {
        let mut rng = StdRng::seed_from_u64(17);
        sample_normal_truncated(&mut rng, 0.0, 0.01, 0.5, 1.0);
    }

    #[test]
    fn truncated_normal_mean_near_center() {
        let mut rng = StdRng::seed_from_u64(16);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| sample_normal_truncated(&mut rng, 0.5, 0.1, 0.0, 1.0)).sum::<f64>()
                / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "empirical mean {mean}");
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exponential_rejects_bad_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_exponential(&mut rng, 0.0);
    }
}
