//! # pool-workloads — event & query workload generation
//!
//! Deterministic (seeded) generators for the workloads of the Pool paper's
//! evaluation (§5.1) and its ablations:
//!
//! * [`events`] — uniform events (the paper's setting) plus hotspot/skewed
//!   distributions for the workload-sharing study.
//! * [`queries`] — exact-match queries with uniform / exponential / normal
//!   / constant range-size distributions, `m`-partial and `1@n`-partial
//!   match queries.
//! * [`distributions`] — the hand-rolled exponential / Zipf /
//!   truncated-normal samplers beneath them.
//!
//! # Examples
//!
//! ```
//! use pool_workloads::queries::{exact_query, RangeSizeDistribution};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
//! assert_eq!(q.dims(), 3);
//! ```

#![warn(missing_docs)]

pub mod distributions;
pub mod events;
pub mod queries;
pub mod scenario;

pub use events::{EventDistribution, EventGenerator};
pub use queries::{exact_query, partial_query, partial_query_at, RangeSizeDistribution};
pub use scenario::{QueryWorkload, WorkloadSpec};
