//! Query workload generators matching §5.1.
//!
//! * **Exact-match queries** draw every dimension's range *size* from a
//!   configurable distribution (the DIM paper's query-size distributions;
//!   the Pool paper reports the uniform and exponential cases) and place
//!   the range uniformly.
//! * **m-partial queries** leave `m` randomly-chosen dimensions
//!   unspecified; the remaining dimensions get a range whose size is drawn
//!   from `[0, 0.25]`.
//! * **1@n-partial queries** pin *which* dimension is unspecified — the
//!   Figure 7(b) workload.

use crate::distributions::{sample_exponential_capped, sample_normal_truncated};
use pool_core::query::RangeQuery;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of the per-dimension range *size* of exact-match queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RangeSizeDistribution {
    /// Size uniform in `[0, 1]` (large ranges on average).
    Uniform,
    /// Size exponential with the given mean, capped at 1 (small ranges).
    Exponential {
        /// Mean range size.
        mean: f64,
    },
    /// Size normal with the given mean and deviation, truncated to `[0, 1]`.
    Normal {
        /// Mean range size.
        mean: f64,
        /// Standard deviation of the size.
        std_dev: f64,
    },
    /// Fixed size.
    Constant {
        /// The fixed range size.
        size: f64,
    },
}

impl RangeSizeDistribution {
    /// Draws one range size in `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            RangeSizeDistribution::Uniform => rng.gen_range(0.0..=1.0),
            RangeSizeDistribution::Exponential { mean } => {
                sample_exponential_capped(rng, mean, 1.0)
            }
            RangeSizeDistribution::Normal { mean, std_dev } => {
                sample_normal_truncated(rng, mean, std_dev, 0.0, 1.0)
            }
            RangeSizeDistribution::Constant { size } => {
                assert!((0.0..=1.0).contains(&size), "constant size {size} outside [0, 1]");
                size
            }
        }
    }
}

/// One range `[lo, lo+size]` placed uniformly at random so it fits in
/// `[0, 1]`.
fn place_range<R: Rng + ?Sized>(rng: &mut R, size: f64) -> (f64, f64) {
    let size = size.clamp(0.0, 1.0);
    let lo = rng.gen_range(0.0..=(1.0 - size));
    (lo, (lo + size).min(1.0))
}

/// Generates an exact-match range query over `dims` dimensions with range
/// sizes drawn from `sizes`.
///
/// # Panics
///
/// Panics if `dims == 0`.
pub fn exact_query<R: Rng + ?Sized>(
    rng: &mut R,
    dims: usize,
    sizes: RangeSizeDistribution,
) -> RangeQuery {
    assert!(dims > 0, "queries need at least one dimension");
    let bounds = (0..dims)
        .map(|_| {
            let size = sizes.sample(rng);
            Some(place_range(rng, size))
        })
        .collect();
    RangeQuery::from_bounds(bounds).expect("generated bounds are always valid")
}

/// Generates an `m`-partial match query (§5.1): `m` randomly-chosen
/// dimensions are unspecified; each remaining dimension gets a range whose
/// size is uniform in `[0, 0.25]`.
///
/// # Panics
///
/// Panics unless `0 < m < dims` (at least one dimension must stay
/// specified).
pub fn partial_query<R: Rng + ?Sized>(rng: &mut R, dims: usize, m: usize) -> RangeQuery {
    assert!(m > 0 && m < dims, "m-partial needs 0 < m < k (m={m}, k={dims})");
    let mut order: Vec<usize> = (0..dims).collect();
    order.shuffle(rng);
    let unspecified: Vec<usize> = order[..m].to_vec();
    build_partial(rng, dims, &unspecified)
}

/// Generates a `1@n`-partial match query: exactly dimension `unspecified`
/// (0-based) is a don't-care.
///
/// # Panics
///
/// Panics if `unspecified >= dims` or `dims < 2`.
pub fn partial_query_at<R: Rng + ?Sized>(
    rng: &mut R,
    dims: usize,
    unspecified: usize,
) -> RangeQuery {
    assert!(dims >= 2, "1@n-partial needs k ≥ 2");
    assert!(unspecified < dims, "dimension {unspecified} out of range");
    build_partial(rng, dims, &[unspecified])
}

fn build_partial<R: Rng + ?Sized>(rng: &mut R, dims: usize, unspecified: &[usize]) -> RangeQuery {
    let bounds = (0..dims)
        .map(|d| {
            if unspecified.contains(&d) {
                None
            } else {
                let size = rng.gen_range(0.0..=0.25);
                Some(place_range(rng, size))
            }
        })
        .collect();
    RangeQuery::from_bounds(bounds).expect("generated bounds are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_core::query::QueryType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_queries_are_exact_and_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            RangeSizeDistribution::Uniform,
            RangeSizeDistribution::Exponential { mean: 0.1 },
            RangeSizeDistribution::Normal { mean: 0.3, std_dev: 0.1 },
            RangeSizeDistribution::Constant { size: 0.2 },
        ] {
            for _ in 0..200 {
                let q = exact_query(&mut rng, 3, dist);
                assert!(!q.is_partial());
                for b in q.bounds() {
                    let (lo, hi) = b.unwrap();
                    assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi);
                }
            }
        }
    }

    #[test]
    fn uniform_sizes_are_larger_than_exponential() {
        let mut rng = StdRng::seed_from_u64(2);
        let avg = |dist: RangeSizeDistribution, rng: &mut StdRng| -> f64 {
            (0..2000)
                .map(|_| {
                    let q = exact_query(rng, 3, dist);
                    q.bounds().iter().map(|b| b.map(|(l, u)| u - l).unwrap()).sum::<f64>() / 3.0
                })
                .sum::<f64>()
                / 2000.0
        };
        let uni = avg(RangeSizeDistribution::Uniform, &mut rng);
        let exp = avg(RangeSizeDistribution::Exponential { mean: 0.1 }, &mut rng);
        assert!((0.45..0.55).contains(&uni), "uniform mean size {uni}");
        assert!((0.05..0.15).contains(&exp), "exponential mean size {exp}");
    }

    #[test]
    fn m_partial_has_m_unspecified_dims() {
        let mut rng = StdRng::seed_from_u64(3);
        for m in 1..3 {
            for _ in 0..100 {
                let q = partial_query(&mut rng, 3, m);
                assert_eq!(q.unspecified_count(), m);
                assert_eq!(q.query_type(), QueryType::PartialMatchRange);
                // Specified ranges are at most 0.25 wide.
                for b in q.bounds().iter().flatten() {
                    assert!(b.1 - b.0 <= 0.25 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn m_partial_chooses_dims_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let q = partial_query(&mut rng, 3, 1);
            let dim = q.bounds().iter().position(Option::is_none).unwrap();
            counts[dim] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "dim {d} chosen {c} times of 3000");
        }
    }

    #[test]
    fn one_at_n_pins_the_dimension() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 0..3 {
            let q = partial_query_at(&mut rng, 3, n);
            assert_eq!(q.unspecified_count(), 1);
            assert!(q.bounds()[n].is_none());
        }
    }

    #[test]
    #[should_panic(expected = "0 < m < k")]
    fn all_unspecified_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = partial_query(&mut rng, 3, 3);
    }
}
