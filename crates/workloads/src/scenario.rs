//! Named experiment scenarios.
//!
//! A [`WorkloadSpec`] bundles everything that defines one experimental
//! condition — network size, event distribution, query workload, repetition
//! counts — as plain serializable data, so experiment configurations can be
//! stored, diffed, and replayed. The presets cover every condition in the
//! paper's §5.

use crate::events::EventDistribution;
use crate::queries::RangeSizeDistribution;
use serde::{Deserialize, Serialize};

/// The query workload of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryWorkload {
    /// Exact-match range queries with the given size distribution.
    Exact(RangeSizeDistribution),
    /// `m`-partial match queries.
    MPartial(usize),
    /// `1@n`-partial match queries (`n` 0-based).
    OneAtN(usize),
}

/// A complete, serializable experimental condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Scenario name for tables and file names.
    pub name: String,
    /// Number of sensor nodes.
    pub nodes: usize,
    /// Event dimensionality.
    pub dims: usize,
    /// Events per node.
    pub events_per_node: usize,
    /// How event values are drawn.
    pub events: EventDistribution,
    /// The query workload.
    pub queries: QueryWorkload,
    /// Queries per measurement.
    pub query_count: usize,
    /// Master seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// §5.1 base parameters with a given name, size, and query workload.
    fn paper_base(name: &str, nodes: usize, queries: QueryWorkload) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            nodes,
            dims: 3,
            events_per_node: 3,
            events: EventDistribution::Uniform,
            queries,
            query_count: 100,
            seed: 42,
        }
    }

    /// Figure 6(a): exact match, uniform range sizes, at `nodes`.
    pub fn fig6_uniform(nodes: usize) -> Self {
        Self::paper_base(
            &format!("fig6a-uniform-{nodes}"),
            nodes,
            QueryWorkload::Exact(RangeSizeDistribution::Uniform),
        )
    }

    /// Figure 6(b): exact match, exponential range sizes, at `nodes`.
    pub fn fig6_exponential(nodes: usize) -> Self {
        Self::paper_base(
            &format!("fig6b-exponential-{nodes}"),
            nodes,
            QueryWorkload::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
        )
    }

    /// Figure 7(a): `m`-partial match at 900 nodes.
    pub fn fig7_m_partial(m: usize) -> Self {
        Self::paper_base(&format!("fig7a-{m}partial"), 900, QueryWorkload::MPartial(m))
    }

    /// Figure 7(b): `1@n`-partial match at 900 nodes (`n` 1-based as in the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 (the paper numbers dimensions from 1).
    pub fn fig7_one_at(n: usize) -> Self {
        assert!(n >= 1, "the paper numbers 1@n dimensions from 1");
        Self::paper_base(&format!("fig7b-1at{n}partial"), 900, QueryWorkload::OneAtN(n - 1))
    }

    /// The hotspot/skew condition used by the §4.2 study.
    pub fn hotspot(nodes: usize) -> Self {
        WorkloadSpec {
            events: EventDistribution::Hotspot { center: vec![0.85, 0.1, 0.1], std_dev: 0.02 },
            ..Self::paper_base(
                &format!("hotspot-{nodes}"),
                nodes,
                QueryWorkload::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            )
        }
    }

    /// Every condition of the paper's evaluation, in figure order.
    pub fn paper_suite() -> Vec<WorkloadSpec> {
        let mut suite = Vec::new();
        for nodes in [300, 600, 900, 1200] {
            suite.push(Self::fig6_uniform(nodes));
            suite.push(Self::fig6_exponential(nodes));
        }
        suite.push(Self::fig7_m_partial(1));
        suite.push(Self::fig7_m_partial(2));
        for n in 1..=3 {
            suite.push(Self::fig7_one_at(n));
        }
        suite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_covers_every_figure_condition() {
        let suite = WorkloadSpec::paper_suite();
        assert_eq!(suite.len(), 4 * 2 + 2 + 3);
        // All names are unique.
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn presets_match_paper_parameters() {
        let s = WorkloadSpec::fig6_uniform(900);
        assert_eq!(s.nodes, 900);
        assert_eq!(s.dims, 3);
        assert_eq!(s.events_per_node, 3);
        assert_eq!(s.queries, QueryWorkload::Exact(RangeSizeDistribution::Uniform));

        let s = WorkloadSpec::fig7_one_at(1);
        assert_eq!(s.queries, QueryWorkload::OneAtN(0));
        assert_eq!(s.nodes, 900);
    }

    #[test]
    fn hotspot_preset_is_skewed() {
        let s = WorkloadSpec::hotspot(600);
        assert!(matches!(s.events, EventDistribution::Hotspot { .. }));
    }

    #[test]
    #[should_panic(expected = "from 1")]
    fn one_at_zero_rejected() {
        let _ = WorkloadSpec::fig7_one_at(0);
    }
}
