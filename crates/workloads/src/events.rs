//! Event workload generators.
//!
//! The paper's evaluation uses uniformly-distributed attribute values
//! (§5.1); the hotspot study additionally needs skewed data ("a
//! significantly high percentage of events appearing in the same value
//! range", §4.2). Both are provided, plus a mixture for partially-skewed
//! scenarios.

use crate::distributions::sample_normal_truncated;
use pool_core::event::Event;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How event attribute values are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventDistribution {
    /// Every attribute independently uniform in `[0, 1]` (§5.1).
    Uniform,
    /// All attributes clustered around `center` with the given spread —
    /// the skewed workload that triggers hotspots.
    Hotspot {
        /// Per-dimension cluster center (values in `[0, 1]`).
        center: Vec<f64>,
        /// Standard deviation of the truncated-normal spread.
        std_dev: f64,
    },
    /// With probability `hot_fraction` draw from the hotspot, otherwise
    /// uniform.
    Mixture {
        /// Per-dimension cluster center.
        center: Vec<f64>,
        /// Standard deviation of the hotspot component.
        std_dev: f64,
        /// Probability of drawing from the hotspot component.
        hot_fraction: f64,
    },
}

/// A seedable generator of `k`-dimensional events.
///
/// # Examples
///
/// ```
/// use pool_workloads::events::{EventDistribution, EventGenerator};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
/// let event = generator.generate(&mut rng);
/// assert_eq!(event.dims(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EventGenerator {
    dims: usize,
    distribution: EventDistribution,
}

impl EventGenerator {
    /// Creates a generator of `dims`-dimensional events.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`, a hotspot center has the wrong arity or
    /// out-of-range values, or a fraction/σ parameter is invalid.
    pub fn new(dims: usize, distribution: EventDistribution) -> Self {
        assert!(dims > 0, "events need at least one dimension");
        match &distribution {
            EventDistribution::Uniform => {}
            EventDistribution::Hotspot { center, std_dev }
            | EventDistribution::Mixture { center, std_dev, .. } => {
                assert_eq!(center.len(), dims, "hotspot center arity mismatch");
                assert!(
                    center.iter().all(|v| (0.0..=1.0).contains(v)),
                    "hotspot center outside [0, 1]"
                );
                assert!(*std_dev > 0.0, "hotspot σ must be positive");
            }
        }
        if let EventDistribution::Mixture { hot_fraction, .. } = &distribution {
            assert!((0.0..=1.0).contains(hot_fraction), "hot fraction must be a probability");
        }
        EventGenerator { dims, distribution }
    }

    /// Event dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Draws one event.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Event {
        let values = match &self.distribution {
            EventDistribution::Uniform => (0..self.dims).map(|_| rng.gen()).collect(),
            EventDistribution::Hotspot { center, std_dev } => {
                Self::hotspot_values(rng, center, *std_dev)
            }
            EventDistribution::Mixture { center, std_dev, hot_fraction } => {
                if rng.gen_bool(*hot_fraction) {
                    Self::hotspot_values(rng, center, *std_dev)
                } else {
                    (0..self.dims).map(|_| rng.gen()).collect()
                }
            }
        };
        Event::new(values).expect("generated values are always in [0, 1]")
    }

    /// Draws `count` events.
    pub fn generate_many<R: Rng + ?Sized>(&mut self, rng: &mut R, count: usize) -> Vec<Event> {
        (0..count).map(|_| self.generate(rng)).collect()
    }

    fn hotspot_values<R: Rng + ?Sized>(rng: &mut R, center: &[f64], std_dev: f64) -> Vec<f64> {
        center.iter().map(|&c| sample_normal_truncated(rng, c, std_dev, 0.0, 1.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_events_cover_the_space() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = EventGenerator::new(3, EventDistribution::Uniform);
        let events = g.generate_many(&mut rng, 3000);
        // Each octant of [0,1]³ should receive a reasonable share.
        let mut octants = [0usize; 8];
        for e in &events {
            let idx = e.values().iter().fold(0usize, |acc, &v| (acc << 1) | (v >= 0.5) as usize);
            octants[idx] += 1;
        }
        for (i, &c) in octants.iter().enumerate() {
            assert!(c > 200, "octant {i} only got {c} of 3000");
        }
    }

    #[test]
    fn hotspot_events_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = EventGenerator::new(
            3,
            EventDistribution::Hotspot { center: vec![0.8, 0.1, 0.1], std_dev: 0.05 },
        );
        let events = g.generate_many(&mut rng, 500);
        let near = events
            .iter()
            .filter(|e| (e.value(0) - 0.8).abs() < 0.2 && e.value(1) < 0.3 && e.value(2) < 0.3)
            .count();
        assert!(near > 450, "only {near}/500 events near the hotspot");
    }

    #[test]
    fn mixture_blends_components() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = EventGenerator::new(
            2,
            EventDistribution::Mixture { center: vec![0.9, 0.9], std_dev: 0.02, hot_fraction: 0.5 },
        );
        let events = g.generate_many(&mut rng, 2000);
        let hot = events.iter().filter(|e| e.value(0) > 0.8 && e.value(1) > 0.8).count();
        // Roughly half plus the uniform spill-over into that corner.
        assert!((900..1300).contains(&hot), "hot count {hot}");
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let mut a = EventGenerator::new(3, EventDistribution::Uniform);
        let mut b = EventGenerator::new(3, EventDistribution::Uniform);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        assert_eq!(a.generate_many(&mut ra, 50), b.generate_many(&mut rb, 50));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn center_arity_checked() {
        let _ =
            EventGenerator::new(3, EventDistribution::Hotspot { center: vec![0.5], std_dev: 0.1 });
    }
}
