//! Continuous monitoring queries — the paper's §6 extension.
//!
//! A *continuous* (standing) query is installed once and then notifies its
//! sink whenever a newly inserted event matches. Pool's structure makes the
//! installation cheap and exact: Theorem 3.2 names precisely the cells
//! where future matching events can land, so the query is registered at
//! those index nodes and nowhere else.
//!
//! Costs charged:
//! * **Installation**: the same splitter-tree forwarding as a one-shot
//!   query (sink → splitter → relevant cells).
//! * **Per notification**: one GPSR unicast from the storing index node to
//!   the sink, per matching insertion.
//! * **Removal**: same forwarding as installation.

use crate::grid::CellCoord;
use crate::query::RangeQuery;
use pool_netsim::node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handle identifying an installed continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MonitorId(pub u64);

/// One installed continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct Monitor {
    /// The handle returned at installation.
    pub id: MonitorId,
    /// The node that receives notifications.
    pub sink: NodeId,
    /// The standing query.
    pub query: RangeQuery,
}

/// Registry of continuous queries, indexed by the cells they watch.
#[derive(Debug, Clone, Default)]
pub struct MonitorTable {
    monitors: HashMap<MonitorId, Monitor>,
    /// Cell → monitors watching it.
    by_cell: HashMap<CellCoord, Vec<MonitorId>>,
    next_id: u64,
}

impl MonitorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MonitorTable::default()
    }

    /// Registers a monitor watching `cells`, returning its handle.
    pub fn install(&mut self, sink: NodeId, query: RangeQuery, cells: &[CellCoord]) -> MonitorId {
        let id = MonitorId(self.next_id);
        self.next_id += 1;
        self.monitors.insert(id, Monitor { id, sink, query });
        for &cell in cells {
            self.by_cell.entry(cell).or_default().push(id);
        }
        id
    }

    /// Removes a monitor. Returns the removed record, or `None` if the
    /// handle is unknown (already removed).
    pub fn remove(&mut self, id: MonitorId) -> Option<Monitor> {
        let monitor = self.monitors.remove(&id)?;
        for ids in self.by_cell.values_mut() {
            ids.retain(|&m| m != id);
        }
        self.by_cell.retain(|_, ids| !ids.is_empty());
        Some(monitor)
    }

    /// The monitor with handle `id`, if installed.
    pub fn get(&self, id: MonitorId) -> Option<&Monitor> {
        self.monitors.get(&id)
    }

    /// All monitors watching `cell`, in installation order.
    pub fn watching(&self, cell: CellCoord) -> impl Iterator<Item = &Monitor> {
        self.by_cell.get(&cell).into_iter().flatten().filter_map(move |id| self.monitors.get(id))
    }

    /// The cells watched by monitor `id` (for cost accounting and tests).
    pub fn cells_of(&self, id: MonitorId) -> Vec<CellCoord> {
        let mut cells: Vec<CellCoord> =
            self.by_cell.iter().filter(|(_, ids)| ids.contains(&id)).map(|(&c, _)| c).collect();
        cells.sort();
        cells
    }

    /// Iterates over every installed monitor (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Monitor> {
        self.monitors.values()
    }

    /// Number of installed monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether no monitors are installed.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }
}

/// A notification produced by a matching insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The monitor that fired.
    pub monitor: MonitorId,
    /// The sink that was notified.
    pub sink: NodeId,
    /// Messages spent on this notification (charged even when delivery
    /// ultimately failed — the radio transmitted them regardless).
    pub messages: u64,
    /// Whether the notification actually reached the sink. Always `true`
    /// on a loss-free radio; on a lossy one a drop is recorded here instead
    /// of failing the insertion that triggered it.
    pub delivered: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(lo: f64, hi: f64) -> RangeQuery {
        RangeQuery::exact(vec![(lo, hi), (0.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    #[test]
    fn install_get_remove_roundtrip() {
        let mut table = MonitorTable::new();
        let cells = [CellCoord::new(1, 1), CellCoord::new(1, 2)];
        let id = table.install(NodeId(3), q(0.2, 0.4), &cells);
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(id).unwrap().sink, NodeId(3));
        assert_eq!(table.cells_of(id), cells.to_vec());
        let removed = table.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(table.is_empty());
        assert!(table.remove(id).is_none());
    }

    #[test]
    fn watching_returns_all_monitors_of_a_cell() {
        let mut table = MonitorTable::new();
        let shared = CellCoord::new(5, 5);
        let a = table.install(NodeId(1), q(0.0, 0.5), &[shared]);
        let b = table.install(NodeId(2), q(0.5, 1.0), &[shared, CellCoord::new(6, 6)]);
        let ids: Vec<MonitorId> = table.watching(shared).map(|m| m.id).collect();
        assert_eq!(ids, vec![a, b]);
        let ids: Vec<MonitorId> = table.watching(CellCoord::new(6, 6)).map(|m| m.id).collect();
        assert_eq!(ids, vec![b]);
        assert!(table.watching(CellCoord::new(9, 9)).next().is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut table = MonitorTable::new();
        let a = table.install(NodeId(1), q(0.0, 1.0), &[CellCoord::new(0, 0)]);
        table.remove(a);
        let b = table.install(NodeId(1), q(0.0, 1.0), &[CellCoord::new(0, 0)]);
        assert_ne!(a, b);
    }
}
