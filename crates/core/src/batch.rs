//! Multi-query batching.
//!
//! Sinks often issue several related queries at once (a dashboard refresh,
//! a sweep over thresholds). Issued separately, each query pays its own
//! sink→splitter legs and revisits shared cells. A *batch* shares both:
//! one combined packet travels to each pool's splitter, every relevant
//! cell is visited once (even when several queries select it), and one
//! combined reply returns per participating cell and pool.
//!
//! Batching never changes answers — only the bill.

use crate::event::Event;
use crate::query::RangeQuery;
use crate::resolve::relevant_cells;
use crate::system::{PoolSystem, QueryCost};
use crate::PoolError;
use pool_netsim::node::NodeId;
use pool_transport::metrics::LedgerSnapshot;
use pool_transport::trace::TraceOp;
use pool_transport::TrafficLayer;
use std::collections::{HashMap, HashSet};

/// The outcome of a query batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Per-query answer sets, in input order.
    pub per_query: Vec<Vec<Event>>,
    /// The shared message bill for the whole batch.
    pub cost: QueryCost,
    /// Distinct cells visited across the batch (after dedup).
    pub cells_visited: usize,
}

impl PoolSystem {
    /// Processes `queries` from `sink` as one batch.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidQuery`] for an empty batch,
    /// [`PoolError::DimensionMismatch`] if any query has the wrong arity,
    /// and routing errors.
    pub fn query_batch(
        &mut self,
        sink: NodeId,
        queries: &[RangeQuery],
    ) -> Result<BatchResult, PoolError> {
        if queries.is_empty() {
            return Err(PoolError::InvalidQuery { reason: "empty batch".into() });
        }
        for q in queries {
            if q.dims() != self.config().dims {
                return Err(PoolError::DimensionMismatch {
                    expected: self.config().dims,
                    got: q.dims(),
                });
            }
        }

        // Union of relevant cells per pool, remembering which queries want
        // each cell.
        let mut by_pool: HashMap<usize, HashMap<crate::grid::CellCoord, Vec<usize>>> =
            HashMap::new();
        for (qi, q) in queries.iter().enumerate() {
            for (dim, cell) in relevant_cells(self.layout(), q) {
                by_pool.entry(dim).or_default().entry(cell).or_default().push(qi);
            }
        }

        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut cost = QueryCost::default();
        let mut per_query: Vec<Vec<Event>> = vec![Vec::new(); queries.len()];
        let mut visited = HashSet::new();

        // Per-pool legs fan out concurrently in virtual time (like
        // `query_from`): each pool's branch launches at the op start, and
        // the batch's elapsed time is the slowest branch.
        let op_start = self.transport.clock().now();
        let mut op_end = op_start;

        let mut dims: Vec<usize> = by_pool.keys().copied().collect();
        dims.sort_unstable();
        for dim in dims {
            op_end = op_end.max(self.transport.clock().now());
            self.transport.clock_mut().seek(op_start);
            let cells = &by_pool[&dim];
            let splitter = self.splitter_of(dim, sink);
            self.splitters_used.insert(splitter);
            let to_splitter =
                self.route_and_record(TraceOp::Batch, sink, splitter, TrafficLayer::Forward)?;
            cost.forward_messages += to_splitter.transmissions - to_splitter.retransmissions;
            cost.retransmit_messages += to_splitter.retransmissions;
            cost.forward_latency += to_splitter.latency;

            let mut pool_has_match = false;
            let mut sorted_cells: Vec<_> = cells.keys().copied().collect();
            sorted_cells.sort();
            for cell in sorted_cells {
                visited.insert(cell);
                let index_node = self.index_node_of(cell).expect("pool cells have index nodes");
                let to_cell = self.route_and_record(
                    TraceOp::Batch,
                    splitter,
                    index_node,
                    TrafficLayer::Forward,
                )?;
                cost.forward_messages += to_cell.transmissions - to_cell.retransmissions;
                cost.retransmit_messages += to_cell.retransmissions;
                cost.forward_latency += to_cell.latency;

                // One scan of the cell serves every interested query.
                let interested = &cells[&cell];
                let mut cell_matched = false;
                let stored: Vec<Event> =
                    self.store().events_in(cell).iter().map(|s| s.event.clone()).collect();
                for event in stored {
                    for &qi in interested {
                        if queries[qi].matches(&event) {
                            per_query[qi].push(event.clone());
                            cell_matched = true;
                        }
                    }
                }
                if cell_matched {
                    let back = self.route_and_record(
                        TraceOp::Batch,
                        index_node,
                        splitter,
                        TrafficLayer::Reply,
                    )?;
                    cost.reply_messages += back.transmissions - back.retransmissions;
                    cost.retransmit_messages += back.retransmissions;
                    cost.reply_latency += back.latency;
                    pool_has_match = true;
                }
            }
            if pool_has_match {
                let back =
                    self.route_and_record(TraceOp::Batch, splitter, sink, TrafficLayer::Reply)?;
                cost.reply_messages += back.transmissions - back.retransmissions;
                cost.retransmit_messages += back.retransmissions;
                cost.reply_latency += back.latency;
            }
        }
        op_end = op_end.max(self.transport.clock().now());
        self.transport.clock_mut().seek(op_end);
        cost.elapsed = op_end - op_start;
        ledger_before.debug_assert_layers(
            self.transport.ledger(),
            "query_batch",
            &[
                (TrafficLayer::Forward, cost.forward_messages),
                (TrafficLayer::Reply, cost.reply_messages),
                (TrafficLayer::Retransmit, cost.retransmit_messages),
            ],
        );
        Ok(BatchResult { per_query, cost, cells_visited: visited.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::topology::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> PoolSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(300, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), PoolConfig::paper()).unwrap();
            }
            s += 1000;
        }
    }

    fn load(pool: &mut PoolSystem, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
        }
    }

    fn sample_queries() -> Vec<RangeQuery> {
        vec![
            RangeQuery::exact(vec![(0.2, 0.5), (0.0, 0.6), (0.0, 1.0)]).unwrap(),
            RangeQuery::exact(vec![(0.3, 0.6), (0.1, 0.7), (0.0, 1.0)]).unwrap(), // overlaps q0
            RangeQuery::from_bounds(vec![None, Some((0.8, 0.9)), None]).unwrap(),
        ]
    }

    #[test]
    fn batch_answers_match_individual_queries() {
        let mut batched = build(1);
        load(&mut batched, 300, 9);
        let mut single = build(1);
        load(&mut single, 300, 9);
        let queries = sample_queries();
        let batch = batched.query_batch(NodeId(7), &queries).unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let mut individual = single.query_from(NodeId(7), q).unwrap().events;
            let mut from_batch = batch.per_query[qi].clone();
            let key = |e: &Event| e.values().iter().map(|v| (v * 1e9) as i64).collect::<Vec<_>>();
            individual.sort_by_key(key);
            from_batch.sort_by_key(key);
            assert_eq!(from_batch, individual, "query {qi}");
        }
    }

    #[test]
    fn batching_is_cheaper_than_separate_queries() {
        let mut batched = build(2);
        load(&mut batched, 300, 10);
        let mut single = build(2);
        load(&mut single, 300, 10);
        let queries = sample_queries();
        let batch_cost = batched.query_batch(NodeId(11), &queries).unwrap().cost.total();
        let separate: u64 =
            queries.iter().map(|q| single.query_from(NodeId(11), q).unwrap().cost.total()).sum();
        assert!(batch_cost < separate, "batch {batch_cost} should beat separate {separate}");
    }

    #[test]
    fn overlapping_queries_share_cell_visits() {
        let mut pool = build(3);
        let queries = vec![
            RangeQuery::exact(vec![(0.2, 0.4), (0.0, 1.0), (0.0, 1.0)]).unwrap(),
            RangeQuery::exact(vec![(0.2, 0.4), (0.0, 1.0), (0.0, 1.0)]).unwrap(),
        ];
        let batch = pool.query_batch(NodeId(0), &queries).unwrap();
        // Identical queries resolve to the same cells; dedup means the
        // batch visits them once.
        let one = pool.explain(NodeId(0), &queries[0]).unwrap().relevant_cells();
        assert_eq!(batch.cells_visited, one);
    }

    #[test]
    fn empty_batch_rejected() {
        let mut pool = build(4);
        assert!(matches!(pool.query_batch(NodeId(0), &[]), Err(PoolError::InvalidQuery { .. })));
    }

    #[test]
    fn batch_validates_arity() {
        let mut pool = build(5);
        let bad = RangeQuery::exact(vec![(0.0, 1.0)]).unwrap();
        assert!(matches!(
            pool.query_batch(NodeId(0), &[bad]),
            Err(PoolError::DimensionMismatch { .. })
        ));
    }
}
