//! Multi-dimensional events.
//!
//! An event is a reading `<V₁, V₂, …, V_k>` of `k` normalized attribute
//! values (§2). Pool's placement logic depends on the *ranked* dimensions:
//! `d₁` is the dimension holding the greatest value, `d₂` the second
//! greatest, and so on. Ties (§4.1) are surfaced explicitly via
//! [`Event::greatest_dims`].

use crate::error::PoolError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `k`-dimensional event with attribute values normalized into `[0, 1]`.
///
/// # Examples
///
/// ```
/// use pool_core::event::Event;
///
/// # fn main() -> Result<(), pool_core::error::PoolError> {
/// let e = Event::new(vec![0.3, 0.2, 0.1])?;
/// assert_eq!(e.d1(), 0); // V₁ = 0.3 is the greatest value
/// assert_eq!(e.d2(), 1); // V₂ = 0.2 is the second greatest
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    values: Vec<f64>,
}

impl Event {
    /// Creates an event from its attribute values.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::InvalidEvent`] if `values` is empty or any value
    /// is outside `[0, 1]` or not finite.
    pub fn new(values: Vec<f64>) -> Result<Self, PoolError> {
        if values.is_empty() {
            return Err(PoolError::InvalidEvent { reason: "event has no attributes".into() });
        }
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(PoolError::InvalidEvent {
                    reason: format!("attribute {} is {} (must be in [0, 1])", i + 1, v),
                });
            }
        }
        Ok(Event { values })
    }

    /// The attribute values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value of attribute `dim` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `dim >= k`.
    pub fn value(&self, dim: usize) -> f64 {
        self.values[dim]
    }

    /// Number of dimensions `k`.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Dimensions ordered by descending attribute value; ties resolve to
    /// the lower dimension index so the ordering is total and deterministic.
    ///
    /// `d_order()[0]` is the paper's `d₁`, `d_order()[1]` is `d₂`, etc.
    pub fn d_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| {
            self.values[b].partial_cmp(&self.values[a]).expect("validated finite").then(a.cmp(&b))
        });
        idx
    }

    /// The dimension of the greatest value (`d₁`), lowest index on ties.
    pub fn d1(&self) -> usize {
        self.d_order()[0]
    }

    /// The dimension of the second-greatest value (`d₂`).
    ///
    /// # Panics
    ///
    /// Panics for one-dimensional events, which have no second dimension.
    pub fn d2(&self) -> usize {
        assert!(self.dims() >= 2, "d2 undefined for 1-dimensional events");
        self.d_order()[1]
    }

    /// Greatest attribute value (`V_d₁`).
    pub fn v_d1(&self) -> f64 {
        self.values[self.d1()]
    }

    /// Second-greatest attribute value (`V_d₂`).
    pub fn v_d2(&self) -> f64 {
        self.values[self.d2()]
    }

    /// All dimensions whose value ties the maximum — more than one exactly
    /// when §4.1's multiple-greatest-values case applies.
    pub fn greatest_dims(&self) -> Vec<usize> {
        let max = self.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (0..self.values.len()).filter(|&i| self.values[i] == max).collect()
    }

    /// Whether multiple dimensions tie for the greatest value.
    pub fn has_tied_maximum(&self) -> bool {
        self.greatest_dims().len() > 1
    }

    /// The second-greatest value *assuming* the greatest occurs at `d1`:
    /// the maximum over all other dimensions. Needed when §4.1 stores a
    /// tied event under a specific candidate dimension.
    pub fn v_d2_given_d1(&self, d1: usize) -> f64 {
        self.values
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != d1)
            .map(|(_, &v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_d_ordering() {
        // §3.1.2: E = <0.3, 0.2, 0.1> has d₁ = dimension 1 (index 0).
        let e = Event::new(vec![0.3, 0.2, 0.1]).unwrap();
        assert_eq!(e.d_order(), vec![0, 1, 2]);
        assert_eq!(e.v_d1(), 0.3);
        assert_eq!(e.v_d2(), 0.2);
    }

    #[test]
    fn unsorted_values_rank_correctly() {
        let e = Event::new(vec![0.1, 0.9, 0.5]).unwrap();
        assert_eq!(e.d1(), 1);
        assert_eq!(e.d2(), 2);
        assert_eq!(e.d_order(), vec![1, 2, 0]);
    }

    #[test]
    fn tie_detection() {
        // §4.1: E = <0.4, 0.4, 0.2> ties dimensions 1 and 2.
        let e = Event::new(vec![0.4, 0.4, 0.2]).unwrap();
        assert!(e.has_tied_maximum());
        assert_eq!(e.greatest_dims(), vec![0, 1]);
        // With the tie, v_d2 equals the tied maximum.
        assert_eq!(e.v_d2(), 0.4);
        assert_eq!(e.v_d2_given_d1(0), 0.4);
        assert_eq!(e.v_d2_given_d1(1), 0.4);
    }

    #[test]
    fn v_d2_given_d1_excludes_chosen_dim() {
        let e = Event::new(vec![0.7, 0.3, 0.5]).unwrap();
        assert_eq!(e.v_d2_given_d1(0), 0.5);
        assert_eq!(e.v_d2_given_d1(2), 0.7);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(Event::new(vec![]).is_err());
        assert!(Event::new(vec![1.1]).is_err());
        assert!(Event::new(vec![-0.1, 0.5]).is_err());
        assert!(Event::new(vec![f64::NAN]).is_err());
        assert!(Event::new(vec![0.0, 1.0]).is_ok()); // boundaries are legal
    }

    #[test]
    fn display_is_paper_notation() {
        let e = Event::new(vec![0.4, 0.3, 0.1]).unwrap();
        assert_eq!(e.to_string(), "<0.4, 0.3, 0.1>");
    }

    #[test]
    fn one_dimensional_event_has_d1_only() {
        let e = Event::new(vec![0.5]).unwrap();
        assert_eq!(e.d1(), 0);
        assert_eq!(e.greatest_dims(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "d2 undefined")]
    fn d2_panics_for_one_dimension() {
        let _ = Event::new(vec![0.5]).unwrap().d2();
    }
}
