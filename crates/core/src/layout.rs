//! Pools and their placement on the grid (§2, Figure 2).
//!
//! A `k`-dimensional deployment has exactly `k` pools `P₁ … P_k`, each an
//! `l × l` block of cells anchored at its *pivot cell* `PC_i` (the lower-left
//! corner). Pivot locations are chosen randomly — in a deployed system they
//! are published through the GHT so every sensor can find them; here the
//! random choice is seeded and deterministic.
//!
//! Every cell of a pool is addressed relative to the pivot by its
//! *horizontal offset* `HO` and *vertical offset* `VO` (Definition 2.1), and
//! carries the value ranges of Equation 1:
//!
//! ```text
//! Range_H(C) = [ HO/l, (HO+1)/l )
//! Range_V(C) = [ VO·(HO+1)/l², (VO+1)·(HO+1)/l² )
//! ```

use crate::error::PoolError;
use crate::grid::{CellCoord, Grid};
use crate::interval::Interval;
use pool_ght::hash::splitmix64;
use serde::{Deserialize, Serialize};

/// One pool: an `l × l` block of cells identified by its pivot cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Which dimension this pool stores (0-based; the paper's `P_{i+1}`).
    pub dim: usize,
    /// The pivot cell `PC` at the pool's lower-left corner.
    pub pivot: CellCoord,
    /// Side length `l` in cells.
    pub side: u32,
}

impl PoolSpec {
    /// Creates a pool for dimension `dim` anchored at `pivot`.
    pub fn new(dim: usize, pivot: CellCoord, side: u32) -> Self {
        assert!(side > 0, "pool side must be positive");
        PoolSpec { dim, pivot, side }
    }

    /// The grid cell at offsets `(ho, vo)` from the pivot.
    ///
    /// # Panics
    ///
    /// Panics if an offset is outside `[0, l-1]` (Definition 2.1).
    pub fn cell_at(&self, ho: u32, vo: u32) -> CellCoord {
        assert!(
            ho < self.side && vo < self.side,
            "offsets ({ho},{vo}) outside pool side {}",
            self.side
        );
        CellCoord::new(self.pivot.x + ho, self.pivot.y + vo)
    }

    /// The `(HO, VO)` offsets of `cell`, or `None` if it is not in this
    /// pool.
    pub fn offsets_of(&self, cell: CellCoord) -> Option<(u32, u32)> {
        if cell.x < self.pivot.x || cell.y < self.pivot.y {
            return None;
        }
        let ho = cell.x - self.pivot.x;
        let vo = cell.y - self.pivot.y;
        (ho < self.side && vo < self.side).then_some((ho, vo))
    }

    /// Whether `cell` belongs to this pool.
    pub fn contains(&self, cell: CellCoord) -> bool {
        self.offsets_of(cell).is_some()
    }

    /// Iterates over all `l²` cells of the pool in `(ho, vo)` order.
    pub fn cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        (0..self.side).flat_map(move |ho| (0..self.side).map(move |vo| self.cell_at(ho, vo)))
    }

    /// Equation 1: the horizontal range of the column at offset `ho`.
    ///
    /// Ranges are half-open `[lo, hi)` except at the very top of the value
    /// domain: the last column's range closes at 1.0 so an attribute value
    /// of exactly 1.0 has a home (the paper's normalization puts values *in*
    /// `[0, 1]`, boundary included).
    pub fn range_h(&self, ho: u32) -> Interval {
        let l = self.side as f64;
        let lo = ho as f64 / l;
        if ho + 1 == self.side {
            Interval::closed(lo, 1.0)
        } else {
            Interval::half_open(lo, (ho as f64 + 1.0) / l)
        }
    }

    /// Equation 1: the vertical range of the cell at offsets `(ho, vo)`.
    ///
    /// Like [`PoolSpec::range_h`], the topmost cell of the last column
    /// closes at 1.0.
    pub fn range_v(&self, ho: u32, vo: u32) -> Interval {
        let l2 = (self.side as f64) * (self.side as f64);
        let lo = (vo as f64 * (ho as f64 + 1.0)) / l2;
        let hi = ((vo as f64 + 1.0) * (ho as f64 + 1.0)) / l2;
        if ho + 1 == self.side && vo + 1 == self.side {
            Interval::closed(lo, 1.0)
        } else {
            Interval::half_open(lo, hi)
        }
    }

    /// Whether two pools share any cell.
    pub fn overlaps(&self, other: &PoolSpec) -> bool {
        let (ax1, ay1) = (self.pivot.x, self.pivot.y);
        let (ax2, ay2) = (ax1 + self.side - 1, ay1 + self.side - 1);
        let (bx1, by1) = (other.pivot.x, other.pivot.y);
        let (bx2, by2) = (bx1 + other.side - 1, by1 + other.side - 1);
        ax1 <= bx2 && bx1 <= ax2 && ay1 <= by2 && by1 <= ay2
    }
}

/// The complete pool layout: `k` non-overlapping pools on one grid.
///
/// # Examples
///
/// Figure 2's layout: three pools of side 5, pivots `C(1,2)`, `C(2,10)`,
/// `C(7,3)`:
///
/// ```
/// use pool_core::grid::{CellCoord, Grid};
/// use pool_core::layout::PoolLayout;
/// use pool_netsim::geometry::Rect;
///
/// # fn main() -> Result<(), pool_core::error::PoolError> {
/// let grid = Grid::over(Rect::square(100.0), 5.0)?;
/// let layout = PoolLayout::with_pivots(
///     &grid,
///     5,
///     vec![CellCoord::new(1, 2), CellCoord::new(2, 10), CellCoord::new(7, 3)],
/// )?;
/// assert_eq!(layout.pools().len(), 3);
/// assert!(layout.pool(0).contains(CellCoord::new(3, 4)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolLayout {
    pools: Vec<PoolSpec>,
    side: u32,
}

impl PoolLayout {
    /// Places `k` pools of side `side` at explicitly-given pivot cells.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::LayoutDoesNotFit`] if a pool would extend past
    /// the grid, and [`PoolError::InvalidConfig`] if pools overlap.
    pub fn with_pivots(grid: &Grid, side: u32, pivots: Vec<CellCoord>) -> Result<Self, PoolError> {
        if side == 0 || pivots.is_empty() {
            return Err(PoolError::InvalidConfig {
                reason: format!("need side > 0 and at least one pivot (side={side})"),
            });
        }
        let pools: Vec<PoolSpec> = pivots
            .into_iter()
            .enumerate()
            .map(|(dim, pivot)| PoolSpec::new(dim, pivot, side))
            .collect();
        for p in &pools {
            if p.pivot.x + side > grid.cols() || p.pivot.y + side > grid.rows() {
                return Err(PoolError::LayoutDoesNotFit {
                    pools: pools.len(),
                    side,
                    grid_cols: grid.cols(),
                    grid_rows: grid.rows(),
                });
            }
        }
        for (i, a) in pools.iter().enumerate() {
            for b in &pools[i + 1..] {
                if a.overlaps(b) {
                    return Err(PoolError::InvalidConfig {
                        reason: format!(
                            "pools P{} and P{} overlap (pivots {} and {})",
                            a.dim + 1,
                            b.dim + 1,
                            a.pivot,
                            b.pivot
                        ),
                    });
                }
            }
        }
        Ok(PoolLayout { pools, side })
    }

    /// Places `k` pools of side `side` at pseudo-random non-overlapping
    /// pivot cells, deterministic in `seed` (the paper picks pivots
    /// randomly and publishes them via the DHT).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::LayoutDoesNotFit`] if no non-overlapping
    /// placement is found (grid too small for `k` pools of this size).
    pub fn random(grid: &Grid, k: usize, side: u32, seed: u64) -> Result<Self, PoolError> {
        if side == 0 || k == 0 {
            return Err(PoolError::InvalidConfig {
                reason: format!("need side > 0 and k > 0 (side={side}, k={k})"),
            });
        }
        if side > grid.cols() || side > grid.rows() {
            return Err(PoolError::LayoutDoesNotFit {
                pools: k,
                side,
                grid_cols: grid.cols(),
                grid_rows: grid.rows(),
            });
        }
        let max_x = grid.cols() - side;
        let max_y = grid.rows() - side;
        let mut pools: Vec<PoolSpec> = Vec::with_capacity(k);
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut attempts = 0u32;
        while pools.len() < k {
            attempts += 1;
            if attempts.is_multiple_of(2_000) {
                // Rejection sampling wedged itself (earlier pools block all
                // remaining pivots): restart from scratch.
                pools.clear();
            }
            if attempts > 10_000 {
                // Dense layouts that rejection sampling cannot find may
                // still fit deterministically: pack pools into row-major
                // side-aligned slots.
                return Self::packed(grid, k, side);
            }
            state = splitmix64(state);
            let x = if max_x == 0 { 0 } else { (state >> 32) as u32 % (max_x + 1) };
            let y = if max_y == 0 { 0 } else { (state & 0xffff_ffff) as u32 % (max_y + 1) };
            let candidate = PoolSpec::new(pools.len(), CellCoord::new(x, y), side);
            if pools.iter().all(|p| !p.overlaps(&candidate)) {
                pools.push(candidate);
            }
        }
        Ok(PoolLayout { pools, side })
    }

    /// Deterministic fallback placement: pools packed row-major into
    /// side-aligned slots.
    fn packed(grid: &Grid, k: usize, side: u32) -> Result<Self, PoolError> {
        let slot_cols = grid.cols() / side;
        let slot_rows = grid.rows() / side;
        if (slot_cols as u64) * (slot_rows as u64) < k as u64 {
            return Err(PoolError::LayoutDoesNotFit {
                pools: k,
                side,
                grid_cols: grid.cols(),
                grid_rows: grid.rows(),
            });
        }
        let pools = (0..k)
            .map(|dim| {
                let sx = (dim as u32) % slot_cols;
                let sy = (dim as u32) / slot_cols;
                PoolSpec::new(dim, CellCoord::new(sx * side, sy * side), side)
            })
            .collect();
        Ok(PoolLayout { pools, side })
    }

    /// All pools, `P₁ … P_k` in dimension order.
    pub fn pools(&self) -> &[PoolSpec] {
        &self.pools
    }

    /// The pool for dimension `dim` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn pool(&self, dim: usize) -> &PoolSpec {
        &self.pools[dim]
    }

    /// Number of pools (= the event dimensionality `k`).
    pub fn dims(&self) -> usize {
        self.pools.len()
    }

    /// Pool side length `l` in cells.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The pool containing `cell`, if any.
    pub fn pool_of_cell(&self, cell: CellCoord) -> Option<&PoolSpec> {
        self.pools.iter().find(|p| p.contains(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::geometry::Rect;

    fn grid() -> Grid {
        Grid::over(Rect::square(100.0), 5.0).unwrap()
    }

    fn figure2_layout() -> PoolLayout {
        PoolLayout::with_pivots(
            &grid(),
            5,
            vec![CellCoord::new(1, 2), CellCoord::new(2, 10), CellCoord::new(7, 3)],
        )
        .unwrap()
    }

    #[test]
    fn figure3_horizontal_ranges() {
        // Figure 3: the horizontal ranges of P₁'s five columns.
        let layout = figure2_layout();
        let p1 = layout.pool(0);
        let expect = [(0.0, 0.2), (0.2, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.0)];
        for (ho, &(lo, hi)) in expect.iter().enumerate() {
            let r = p1.range_h(ho as u32);
            assert!((r.lo() - lo).abs() < 1e-12 && (r.hi() - hi).abs() < 1e-12, "column {ho}: {r}");
        }
    }

    #[test]
    fn figure3_vertical_ranges_of_second_column() {
        // Figure 3 / §3.1.1: column HO = 1 splits [0, 0.4) into five
        // sub-ranges of width 0.08.
        let layout = figure2_layout();
        let p1 = layout.pool(0);
        let expect = [(0.0, 0.08), (0.08, 0.16), (0.16, 0.24), (0.24, 0.32), (0.32, 0.4)];
        for (vo, &(lo, hi)) in expect.iter().enumerate() {
            let r = p1.range_v(1, vo as u32);
            assert!((r.lo() - lo).abs() < 1e-12 && (r.hi() - hi).abs() < 1e-12, "row {vo}: {r}");
        }
    }

    #[test]
    fn vertical_ranges_tile_the_column() {
        let layout = figure2_layout();
        let p1 = layout.pool(0);
        for ho in 0..5 {
            // The union of the column's vertical ranges is [0, (ho+1)/l).
            let top = p1.range_v(ho, 4).hi();
            assert!((top - p1.range_h(ho).hi()).abs() < 1e-12);
            for vo in 0..4 {
                assert!((p1.range_v(ho, vo).hi() - p1.range_v(ho, vo + 1).lo()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offsets_roundtrip() {
        let layout = figure2_layout();
        let p2 = layout.pool(1);
        for ho in 0..5 {
            for vo in 0..5 {
                let cell = p2.cell_at(ho, vo);
                assert_eq!(p2.offsets_of(cell), Some((ho, vo)));
            }
        }
        assert_eq!(p2.offsets_of(CellCoord::new(0, 0)), None);
        assert_eq!(p2.offsets_of(CellCoord::new(7, 10)), None); // past side
    }

    #[test]
    fn figure2_cell_membership() {
        let layout = figure2_layout();
        // C(3,4) belongs to P₁ (Figure 3 stores E = <0.4, 0.3, 0.1> there).
        assert!(layout.pool(0).contains(CellCoord::new(3, 4)));
        assert_eq!(layout.pool_of_cell(CellCoord::new(3, 4)).unwrap().dim, 0);
        assert_eq!(layout.pool_of_cell(CellCoord::new(19, 19)), None);
    }

    #[test]
    fn overlapping_pivots_rejected() {
        let err =
            PoolLayout::with_pivots(&grid(), 5, vec![CellCoord::new(1, 2), CellCoord::new(3, 3)]);
        assert!(matches!(err, Err(PoolError::InvalidConfig { .. })));
    }

    #[test]
    fn out_of_grid_pool_rejected() {
        let err = PoolLayout::with_pivots(&grid(), 5, vec![CellCoord::new(18, 0)]);
        assert!(matches!(err, Err(PoolError::LayoutDoesNotFit { .. })));
    }

    #[test]
    fn random_layout_is_deterministic_and_disjoint() {
        let g = grid();
        let a = PoolLayout::random(&g, 3, 10, 99).unwrap();
        let b = PoolLayout::random(&g, 3, 10, 99).unwrap();
        assert_eq!(a, b);
        for (i, p) in a.pools().iter().enumerate() {
            for q in &a.pools()[i + 1..] {
                assert!(!p.overlaps(q));
            }
        }
    }

    #[test]
    fn random_layout_fails_gracefully_when_too_big() {
        let g = grid();
        assert!(matches!(
            PoolLayout::random(&g, 3, 25, 1),
            Err(PoolError::LayoutDoesNotFit { .. })
        ));
        // 4 pools of side 10 on a 20x20 grid fit exactly.
        assert!(PoolLayout::random(&g, 4, 10, 1).is_ok());
    }

    #[test]
    fn cells_iterator_covers_pool() {
        let layout = figure2_layout();
        let p = layout.pool(2);
        let cells: Vec<CellCoord> = p.cells().collect();
        assert_eq!(cells.len(), 25);
        assert!(cells.iter().all(|&c| p.contains(c)));
    }
}
