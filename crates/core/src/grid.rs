//! The virtual grid laid over the deployment field (§2).
//!
//! The field is visualized as equal-sized `α × α` m² cells. `C(x, y)`
//! denotes the cell at column `x`, row `y`, with `C(0, 0)` — the *origin* —
//! at the lower-left corner. Every sensor can determine its native cell from
//! its own position, the cell size `α`, and the origin's physical location.

use crate::error::PoolError;
use pool_netsim::geometry::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical grid coordinates of a cell: `C(x, y)`.
///
/// # Examples
///
/// ```
/// use pool_core::grid::CellCoord;
///
/// let c = CellCoord::new(3, 4);
/// assert_eq!(format!("{c}"), "C(3,4)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellCoord {
    /// Column index (from 0).
    pub x: u32,
    /// Row index (from 0).
    pub y: u32,
}

impl CellCoord {
    /// Creates the coordinate `C(x, y)`.
    pub fn new(x: u32, y: u32) -> Self {
        CellCoord { x, y }
    }
}

impl fmt::Display for CellCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C({},{})", self.x, self.y)
    }
}

/// The grid of `α × α` cells covering the deployment field.
///
/// # Examples
///
/// ```
/// use pool_core::grid::Grid;
/// use pool_netsim::geometry::{Point, Rect};
///
/// # fn main() -> Result<(), pool_core::error::PoolError> {
/// let grid = Grid::over(Rect::square(100.0), 5.0)?;
/// assert_eq!((grid.cols(), grid.rows()), (20, 20));
/// let cell = grid.cell_of(Point::new(12.0, 3.0));
/// assert_eq!((cell.x, cell.y), (2, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    origin: Point,
    alpha: f64,
    cols: u32,
    rows: u32,
}

impl Grid {
    /// Lays a grid of `alpha`-sized cells over `field`, with the origin cell
    /// `C(0, 0)` anchored at the field's lower-left corner.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::InvalidConfig`] if `alpha` is not positive and
    /// finite or the field is degenerate.
    pub fn over(field: Rect, alpha: f64) -> Result<Self, PoolError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(PoolError::InvalidConfig { reason: format!("cell size α = {alpha}") });
        }
        let cols = (field.width() / alpha).ceil() as u32;
        let rows = (field.height() / alpha).ceil() as u32;
        if cols == 0 || rows == 0 {
            return Err(PoolError::InvalidConfig {
                reason: format!(
                    "field {}x{} too small for α = {alpha}",
                    field.width(),
                    field.height()
                ),
            });
        }
        Ok(Grid { origin: field.min, alpha, cols, rows })
    }

    /// The physical location of the origin cell's lower-left corner,
    /// `(x_orig, y_orig)`.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The cell side length `α` in meters.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The native cell of physical location `p` (§2: `x = ⌊(a − x_orig)/α⌋`,
    /// `y = ⌊(b − y_orig)/α⌋`), clamped to the grid for points on or beyond
    /// the upper field boundary.
    pub fn cell_of(&self, p: Point) -> CellCoord {
        let x = ((p.x - self.origin.x) / self.alpha).floor().max(0.0) as u32;
        let y = ((p.y - self.origin.y) / self.alpha).floor().max(0.0) as u32;
        CellCoord::new(x.min(self.cols - 1), y.min(self.rows - 1))
    }

    /// The physical center of cell `c`.
    pub fn center(&self, c: CellCoord) -> Point {
        Point::new(
            self.origin.x + (c.x as f64 + 0.5) * self.alpha,
            self.origin.y + (c.y as f64 + 0.5) * self.alpha,
        )
    }

    /// Whether `c` lies inside the grid.
    pub fn contains(&self, c: CellCoord) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// Euclidean distance between the centers of two cells.
    pub fn cell_distance(&self, a: CellCoord, b: CellCoord) -> f64 {
        self.center(a).distance(self.center(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_100_a5() -> Grid {
        Grid::over(Rect::square(100.0), 5.0).unwrap()
    }

    #[test]
    fn dimensions_round_up() {
        let g = Grid::over(Rect::square(101.0), 5.0).unwrap();
        assert_eq!(g.cols(), 21);
        assert_eq!(g.rows(), 21);
    }

    #[test]
    fn cell_of_and_center_are_consistent() {
        let g = grid_100_a5();
        for x in 0..g.cols() {
            for y in 0..g.rows() {
                let c = CellCoord::new(x, y);
                assert_eq!(g.cell_of(g.center(c)), c);
            }
        }
    }

    #[test]
    fn boundary_points_clamp_into_grid() {
        let g = grid_100_a5();
        let c = g.cell_of(Point::new(100.0, 100.0));
        assert_eq!(c, CellCoord::new(19, 19));
        let c = g.cell_of(Point::new(-1.0, 50.0));
        assert_eq!(c.x, 0);
    }

    #[test]
    fn offset_origin_shifts_cells() {
        let field = Rect::new(Point::new(10.0, 20.0), Point::new(60.0, 70.0));
        let g = Grid::over(field, 5.0).unwrap();
        assert_eq!(g.cell_of(Point::new(10.0, 20.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(14.9, 24.9)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(Point::new(15.1, 25.1)), CellCoord::new(1, 1));
    }

    #[test]
    fn invalid_alpha_rejected() {
        assert!(Grid::over(Rect::square(10.0), 0.0).is_err());
        assert!(Grid::over(Rect::square(10.0), f64::INFINITY).is_err());
    }

    #[test]
    fn cell_distance_is_metric_on_centers() {
        let g = grid_100_a5();
        let a = CellCoord::new(0, 0);
        let b = CellCoord::new(3, 4);
        assert_eq!(g.cell_distance(a, b), 25.0); // 3-4-5 triangle at α = 5
        assert_eq!(g.cell_distance(a, a), 0.0);
    }

    #[test]
    fn paper_parameters_fit() {
        // §5.1: α = 5 m on a ~475 m field for 900 nodes.
        let side = pool_netsim::deployment::field_side_for(900, 40.0, 20.0).unwrap();
        let g = Grid::over(Rect::square(side), 5.0).unwrap();
        assert!(g.cols() >= 90 && g.cols() <= 100, "cols = {}", g.cols());
    }
}
