//! A common interface over data-centric storage schemes.
//!
//! Pool, DIM, and any future scheme answer the same two requests — "store
//! this event" and "return everything matching this query" — differing
//! only in *where* data lands and *what it costs*. [`DataCentricStore`]
//! captures that contract so harnesses, examples, and downstream users can
//! swap schemes without code changes. `pool-dim` implements it for
//! `DimSystem`.

use crate::event::Event;
use crate::query::RangeQuery;
use crate::system::PoolSystem;
use crate::PoolError;
use pool_netsim::node::NodeId;

/// A deployed in-network storage scheme.
///
/// # Examples
///
/// ```
/// use pool_core::dcs::DataCentricStore;
/// use pool_core::{Event, PoolConfig, PoolSystem, RangeQuery};
/// use pool_netsim::{Deployment, NodeId, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dep = Deployment::paper_setting(300, 40.0, 20.0, 77)?;
/// let topo = Topology::build(dep.nodes(), 40.0)?;
/// let mut store: Box<dyn DataCentricStore> =
///     Box::new(PoolSystem::build(topo, dep.field(), PoolConfig::paper())?);
/// store.insert_event(NodeId(1), Event::new(vec![0.5, 0.2, 0.9])?)?;
/// let (events, _msgs) = store.range_query(
///     NodeId(2),
///     &RangeQuery::exact(vec![(0.4, 0.6), (0.1, 0.3), (0.8, 1.0)])?,
/// )?;
/// assert_eq!(events.len(), 1);
/// # Ok(())
/// # }
/// ```
pub trait DataCentricStore {
    /// Human-readable scheme name (for experiment tables).
    fn scheme_name(&self) -> &'static str;

    /// Stores an event detected at `source`, returning the messages
    /// charged.
    ///
    /// # Errors
    ///
    /// Scheme-specific validation and routing errors.
    fn insert_event(&mut self, source: NodeId, event: Event) -> Result<u64, PoolError>;

    /// Answers a range query issued at `sink`: the matching events and the
    /// messages charged.
    ///
    /// # Errors
    ///
    /// Scheme-specific validation and routing errors.
    fn range_query(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
    ) -> Result<(Vec<Event>, u64), PoolError>;

    /// Number of events currently stored in-network.
    fn stored_events(&self) -> usize;

    /// Total messages charged so far (insertions + queries).
    fn total_messages(&self) -> u64;
}

impl DataCentricStore for PoolSystem {
    fn scheme_name(&self) -> &'static str {
        "pool"
    }

    fn insert_event(&mut self, source: NodeId, event: Event) -> Result<u64, PoolError> {
        Ok(self.insert_from(source, event)?.messages)
    }

    fn range_query(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
    ) -> Result<(Vec<Event>, u64), PoolError> {
        let result = self.query_from(sink, query)?;
        Ok((result.events, result.cost.total()))
    }

    fn stored_events(&self) -> usize {
        self.store().len()
    }

    fn total_messages(&self) -> u64 {
        self.traffic().total_messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::topology::Topology;

    fn build() -> PoolSystem {
        let mut seed = 31u64;
        loop {
            let dep = Deployment::paper_setting(250, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), PoolConfig::paper()).unwrap();
            }
            seed += 1;
        }
    }

    #[test]
    fn trait_object_roundtrip() {
        let mut store: Box<dyn DataCentricStore> = Box::new(build());
        assert_eq!(store.scheme_name(), "pool");
        let msgs = store.insert_event(NodeId(4), Event::new(vec![0.9, 0.1, 0.4]).unwrap()).unwrap();
        assert!(msgs > 0);
        assert_eq!(store.stored_events(), 1);
        let q = RangeQuery::exact(vec![(0.8, 1.0), (0.0, 0.2), (0.3, 0.5)]).unwrap();
        let (events, query_msgs) = store.range_query(NodeId(9), &q).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(store.total_messages(), msgs + query_msgs);
    }

    #[test]
    fn trait_is_object_safe_and_generic_usable() {
        fn drive<S: DataCentricStore + ?Sized>(s: &mut S) -> usize {
            s.insert_event(NodeId(0), Event::new(vec![0.2, 0.5, 0.7]).unwrap()).unwrap();
            s.stored_events()
        }
        let mut pool = build();
        assert_eq!(drive(&mut pool), 1);
        let mut boxed: Box<dyn DataCentricStore> = Box::new(pool);
        assert_eq!(drive(boxed.as_mut()), 2);
    }
}
