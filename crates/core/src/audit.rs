//! Whole-system invariant auditing.
//!
//! [`PoolSystem::audit`] sweeps the deployed system and checks every
//! structural invariant the design relies on. Experiments call it after
//! heavy mutation (bulk insertion, workload sharing, failures) to turn
//! silent corruption into loud failure; the integration suite calls it as
//! a final gate.

use crate::insert::candidate_cells;
use crate::system::PoolSystem;
use std::fmt;

/// One violated invariant found by an audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// The outcome of a system audit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// All violations found (empty = healthy).
    pub violations: Vec<AuditViolation>,
    /// Number of events checked.
    pub events_checked: usize,
    /// Number of cells checked.
    pub cells_checked: usize,
}

impl AuditReport {
    /// Whether the system passed every check.
    pub fn is_healthy(&self) -> bool {
        self.violations.is_empty()
    }

    fn violate(&mut self, invariant: &'static str, detail: String) {
        self.violations.push(AuditViolation { invariant, detail });
    }
}

impl PoolSystem {
    /// Audits every structural invariant:
    ///
    /// 1. every stored event sits in a cell that Theorem 3.1 (with §4.1 tie
    ///    handling) could have assigned it;
    /// 2. every pool cell's index node is the live node nearest the cell
    ///    center;
    /// 3. every event holder is alive and is either the cell's index node
    ///    or on the cell's delegation chain;
    /// 4. delegation chains contain no duplicates and only live nodes;
    /// 5. under a sharing policy, no node holds more than `capacity`
    ///    events.
    pub fn audit(&self) -> AuditReport {
        let mut report = AuditReport::default();

        // (2) index-node election.
        for pool in self.layout().pools() {
            for cell in pool.cells() {
                report.cells_checked += 1;
                let Some(index) = self.index_node_of(cell) else {
                    report.violate("index-node-exists", format!("{cell} has no index node"));
                    continue;
                };
                if !self.topology().is_alive(index) {
                    report.violate("index-node-alive", format!("{cell} -> dead {index}"));
                }
                let nearest = self.topology().nearest_node(self.grid().center(cell));
                if nearest != index {
                    report.violate(
                        "index-node-nearest",
                        format!("{cell}: elected {index}, nearest is {nearest}"),
                    );
                }
            }
        }

        // (1), (3) stored events.
        for (cell, stored) in self.store().iter() {
            let chain: Vec<_> = {
                let mut c = Vec::new();
                if let Some(index) = self.index_node_of(*cell) {
                    c.push(index);
                }
                c.extend_from_slice(self.delegates_of(*cell));
                c
            };
            for s in stored {
                report.events_checked += 1;
                let legal_cells = candidate_cells(self.layout(), &s.event);
                if !legal_cells.iter().any(|p| p.cell == *cell) {
                    report.violate(
                        "placement-theorem-3-1",
                        format!("{} stored in {cell}, legal: {legal_cells:?}", s.event),
                    );
                }
                if !self.topology().is_alive(s.holder) {
                    report
                        .violate("holder-alive", format!("{} held by dead {}", s.event, s.holder));
                }
                if !chain.contains(&s.holder) {
                    report.violate(
                        "holder-on-chain",
                        format!("{} held by {} outside chain {chain:?}", s.event, s.holder),
                    );
                }
            }
        }

        // (4) delegation chains.
        for pool in self.layout().pools() {
            for cell in pool.cells() {
                let chain = self.delegates_of(cell);
                for (i, d) in chain.iter().enumerate() {
                    if !self.topology().is_alive(*d) {
                        report.violate("delegate-alive", format!("{cell} delegate {d} dead"));
                    }
                    if chain[i + 1..].contains(d) {
                        report.violate("delegate-unique", format!("{cell} repeats {d}"));
                    }
                }
            }
        }

        // (5) sharing capacity.
        if let Some(policy) = self.config().sharing {
            for node in self.topology().nodes() {
                let load = self.store().count_at(node.id);
                if load > policy.capacity {
                    report.violate(
                        "sharing-capacity",
                        format!("{} holds {load} > capacity {}", node.id, policy.capacity),
                    );
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PoolConfig, SharingPolicy};
    use crate::event::Event;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::node::NodeId;
    use pool_netsim::topology::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64, config: PoolConfig) -> PoolSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(300, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), config).unwrap();
            }
            s += 1000;
        }
    }

    #[test]
    fn fresh_system_is_healthy() {
        let pool = build(1, PoolConfig::paper());
        let report = pool.audit();
        assert!(report.is_healthy(), "{:?}", report.violations);
        assert!(report.cells_checked >= 300);
    }

    #[test]
    fn loaded_system_is_healthy() {
        let mut pool = build(2, PoolConfig::paper());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..250 {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
        }
        let report = pool.audit();
        assert!(report.is_healthy(), "{:?}", report.violations);
        assert_eq!(report.events_checked, 250);
    }

    #[test]
    fn sharing_system_stays_within_capacity() {
        let mut pool = build(3, PoolConfig::paper().with_sharing(SharingPolicy::new(7)));
        for i in 0..60u32 {
            pool.insert_from(NodeId(i % 300), Event::new(vec![0.91, 0.07, 0.03]).unwrap()).unwrap();
        }
        let report = pool.audit();
        assert!(report.is_healthy(), "{:?}", report.violations);
    }

    #[test]
    fn audit_stays_healthy_through_failures() {
        let mut pool = build(4, PoolConfig::paper().with_replication());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
        }
        // Fail a few loaded nodes (keeping connectivity).
        let victims: Vec<NodeId> = (0..300u32)
            .map(NodeId)
            .filter(|&n| pool.store().count_at(n) > 0)
            .filter(|&n| pool.topology().without_nodes(&[n]).is_connected())
            .take(3)
            .collect();
        pool.fail_nodes(&victims).unwrap();
        let report = pool.audit();
        assert!(report.is_healthy(), "{:?}", report.violations);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = AuditViolation { invariant: "holder-alive", detail: "x".into() };
        assert_eq!(v.to_string(), "holder-alive: x");
    }
}
