//! Multi-dimensional range queries.
//!
//! §2 classifies queries into four types by whether every dimension is
//! specified (`h = k` vs `h < k`) and whether bounds coincide (`Lᵢ = Uᵢ`).
//! Partial-match queries are *rewritten* before processing by widening every
//! unspecified dimension to `[0, 1]` — after which all four types flow
//! through the same resolving mechanism (§3.2.2).

use crate::error::PoolError;
use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's four query types (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryType {
    /// Type 1: `h = k`, all `Lᵢ = Uᵢ`.
    ExactMatchPoint,
    /// Type 2: `h < k`, specified dimensions have `Lᵢ = Uᵢ`.
    PartialMatchPoint,
    /// Type 3: `h = k`, at least one `Lᵢ < Uᵢ`.
    ExactMatchRange,
    /// Type 4: `h < k`, at least one specified `Lᵢ < Uᵢ`.
    PartialMatchRange,
}

/// A `k`-dimensional query: per dimension either a user-specified range
/// `[Lᵢ, Uᵢ]` or "don't care" (`*`).
///
/// # Examples
///
/// The partial-match range query `⟨*, *, [0.8, 0.84]⟩` from Example 3.2:
///
/// ```
/// use pool_core::query::{QueryType, RangeQuery};
///
/// # fn main() -> Result<(), pool_core::error::PoolError> {
/// let q = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))])?;
/// assert_eq!(q.query_type(), QueryType::PartialMatchRange);
/// assert_eq!(q.unspecified_count(), 2);
/// assert_eq!(q.rewritten(), vec![(0.0, 1.0), (0.0, 1.0), (0.8, 0.84)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Per dimension: `Some((lo, hi))` if specified, `None` for `*`.
    bounds: Vec<Option<(f64, f64)>>,
}

impl RangeQuery {
    /// Creates a query from per-dimension bounds (use `None` for `*`).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::InvalidQuery`] if there are no dimensions, no
    /// specified dimension at all, or any bound is out of `[0, 1]`,
    /// inverted, or not finite.
    pub fn from_bounds(bounds: Vec<Option<(f64, f64)>>) -> Result<Self, PoolError> {
        if bounds.is_empty() {
            return Err(PoolError::InvalidQuery { reason: "query has no dimensions".into() });
        }
        if bounds.iter().all(Option::is_none) {
            return Err(PoolError::InvalidQuery {
                reason: "query specifies no dimension at all".into(),
            });
        }
        for (i, b) in bounds.iter().enumerate() {
            if let Some((lo, hi)) = b {
                if !lo.is_finite() || !hi.is_finite() || *lo < 0.0 || *hi > 1.0 || lo > hi {
                    return Err(PoolError::InvalidQuery {
                        reason: format!("dimension {}: bad range [{lo}, {hi}]", i + 1),
                    });
                }
            }
        }
        Ok(RangeQuery { bounds })
    }

    /// An exact-match range query: every dimension gets a range.
    ///
    /// # Errors
    ///
    /// Same validation as [`RangeQuery::from_bounds`].
    pub fn exact(ranges: Vec<(f64, f64)>) -> Result<Self, PoolError> {
        RangeQuery::from_bounds(ranges.into_iter().map(Some).collect())
    }

    /// An exact-match *point* query for the single event `values`.
    ///
    /// # Errors
    ///
    /// Same validation as [`RangeQuery::from_bounds`].
    pub fn point(values: Vec<f64>) -> Result<Self, PoolError> {
        RangeQuery::from_bounds(values.into_iter().map(|v| Some((v, v))).collect())
    }

    /// Per-dimension bounds as supplied (before rewriting).
    pub fn bounds(&self) -> &[Option<(f64, f64)>] {
        &self.bounds
    }

    /// Number of dimensions `k`.
    pub fn dims(&self) -> usize {
        self.bounds.len()
    }

    /// Number of unspecified (`*`) dimensions — the `m` of an `m`-partial
    /// query (§5.1).
    pub fn unspecified_count(&self) -> usize {
        self.bounds.iter().filter(|b| b.is_none()).count()
    }

    /// Whether any dimension is unspecified.
    pub fn is_partial(&self) -> bool {
        self.unspecified_count() > 0
    }

    /// The §2 classification of this query.
    pub fn query_type(&self) -> QueryType {
        let partial = self.is_partial();
        let is_point = self.bounds.iter().flatten().all(|(lo, hi)| lo == hi);
        match (partial, is_point) {
            (false, true) => QueryType::ExactMatchPoint,
            (true, true) => QueryType::PartialMatchPoint,
            (false, false) => QueryType::ExactMatchRange,
            (true, false) => QueryType::PartialMatchRange,
        }
    }

    /// The §2 rewrite: unspecified dimensions become `[0, 1]`.
    pub fn rewritten(&self) -> Vec<(f64, f64)> {
        self.bounds.iter().map(|b| b.unwrap_or((0.0, 1.0))).collect()
    }

    /// Whether `event` satisfies this query (the §2 answer predicate).
    ///
    /// # Panics
    ///
    /// Panics if the event's dimensionality differs from the query's.
    pub fn matches(&self, event: &Event) -> bool {
        assert_eq!(
            event.dims(),
            self.dims(),
            "event dimensionality {} does not match query {}",
            event.dims(),
            self.dims()
        );
        self.rewritten().iter().zip(event.values()).all(|(&(lo, hi), &v)| lo <= v && v <= hi)
    }
}

impl fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match b {
                Some((lo, hi)) => write!(f, "[{lo}, {hi}]")?,
                None => write!(f, "*")?,
            }
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(values: &[f64]) -> Event {
        Event::new(values.to_vec()).unwrap()
    }

    #[test]
    fn type_classification_matches_section_2() {
        let t1 = RangeQuery::point(vec![0.1, 0.2]).unwrap();
        assert_eq!(t1.query_type(), QueryType::ExactMatchPoint);

        let t2 = RangeQuery::from_bounds(vec![Some((0.1, 0.1)), None]).unwrap();
        assert_eq!(t2.query_type(), QueryType::PartialMatchPoint);

        let t3 = RangeQuery::exact(vec![(0.1, 0.3), (0.0, 1.0)]).unwrap();
        assert_eq!(t3.query_type(), QueryType::ExactMatchRange);

        let t4 = RangeQuery::from_bounds(vec![Some((0.1, 0.3)), None]).unwrap();
        assert_eq!(t4.query_type(), QueryType::PartialMatchRange);
    }

    #[test]
    fn rewrite_widens_unspecified() {
        let q = RangeQuery::from_bounds(vec![None, Some((0.6, 0.7)), Some((0.4, 0.6))]).unwrap();
        assert_eq!(q.rewritten(), vec![(0.0, 1.0), (0.6, 0.7), (0.4, 0.6)]);
    }

    #[test]
    fn matches_is_inclusive_on_both_ends() {
        let q = RangeQuery::exact(vec![(0.2, 0.4)]).unwrap();
        assert!(q.matches(&ev(&[0.2])));
        assert!(q.matches(&ev(&[0.4])));
        assert!(!q.matches(&ev(&[0.41])));
    }

    #[test]
    fn partial_match_ignores_unspecified_dims() {
        let q = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))]).unwrap();
        assert!(q.matches(&ev(&[0.0, 1.0, 0.82])));
        assert!(!q.matches(&ev(&[0.0, 1.0, 0.85])));
    }

    #[test]
    fn point_query_matches_exactly_one_value() {
        let q = RangeQuery::point(vec![0.25, 0.5]).unwrap();
        assert!(q.matches(&ev(&[0.25, 0.5])));
        assert!(!q.matches(&ev(&[0.25, 0.500001])));
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(RangeQuery::from_bounds(vec![]).is_err());
        assert!(RangeQuery::from_bounds(vec![None, None]).is_err());
        assert!(RangeQuery::exact(vec![(0.5, 0.4)]).is_err());
        assert!(RangeQuery::exact(vec![(-0.1, 0.4)]).is_err());
        assert!(RangeQuery::exact(vec![(0.1, 1.4)]).is_err());
        assert!(RangeQuery::exact(vec![(f64::NAN, 0.4)]).is_err());
    }

    #[test]
    #[should_panic(expected = "does not match query")]
    fn matches_panics_on_arity_mismatch() {
        let q = RangeQuery::exact(vec![(0.0, 1.0)]).unwrap();
        q.matches(&ev(&[0.1, 0.2]));
    }

    #[test]
    fn display_uses_paper_notation() {
        let q = RangeQuery::from_bounds(vec![None, Some((0.6, 0.7))]).unwrap();
        assert_eq!(q.to_string(), "<*, [0.6, 0.7]>");
    }
}
