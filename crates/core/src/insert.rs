//! Event placement — Theorem 3.1 and Algorithm 1, plus §4.1's handling of
//! tied greatest values.
//!
//! Placement is a pure arithmetic computation: *"There is no search process
//! for the cell to store E, as required by most distributed index-based
//! approaches."* The event's greatest value picks the pool and column; the
//! second-greatest picks the row:
//!
//! ```text
//! HO = ⌊ V_d₁ · l ⌋
//! VO = ⌊ V_d₂ · l² / (HO + 1) ⌋
//! ```

use crate::error::PoolError;
use crate::event::Event;
use crate::grid::{CellCoord, Grid};
use crate::layout::PoolLayout;

/// The `(HO, VO)` offsets Theorem 3.1 assigns to an event with greatest
/// value `v_d1` and second-greatest value `v_d2`, in a pool of side `l`.
///
/// Values of exactly 1.0 are clamped into the last column/row, matching the
/// closed-at-1.0 top ranges of Equation 1.
///
/// # Panics
///
/// Panics if `side == 0`, the values are outside `[0, 1]`, or
/// `v_d2 > v_d1` (the second-greatest value can never exceed the greatest).
///
/// # Examples
///
/// §3.1.2's example: `E = <0.4, 0.3, 0.1>` goes to offsets `(HO, VO) =
/// (2, 2)` — the third column, third row — which is cell `C(3,4)` for the
/// Figure 2 pivot `C(1,2)`:
///
/// ```
/// use pool_core::insert::offsets_for;
///
/// assert_eq!(offsets_for(0.4, 0.3, 5), (2, 2));
/// ```
pub fn offsets_for(v_d1: f64, v_d2: f64, side: u32) -> (u32, u32) {
    assert!(side > 0, "pool side must be positive");
    assert!((0.0..=1.0).contains(&v_d1), "v_d1 = {v_d1} outside [0, 1]");
    assert!((0.0..=1.0).contains(&v_d2), "v_d2 = {v_d2} outside [0, 1]");
    assert!(v_d2 <= v_d1, "second-greatest value {v_d2} exceeds greatest {v_d1}");
    let l = side as f64;
    let ho = ((v_d1 * l).floor() as u32).min(side - 1);
    let vo = (((v_d2 * l * l) / (ho as f64 + 1.0)).floor() as u32).min(side - 1);
    (ho, vo)
}

/// A candidate storage cell for an event: the pool (by dimension) and the
/// grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The dimension whose pool stores the event (0-based).
    pub pool_dim: usize,
    /// The grid cell inside that pool.
    pub cell: CellCoord,
}

/// All candidate cells for `event` (§4.1): one per dimension tying the
/// greatest value. For events without ties this is a single cell — the
/// Theorem 3.1 placement.
///
/// # Panics
///
/// Panics if the event's dimensionality differs from the layout's or is
/// less than 2.
pub fn candidate_cells(layout: &PoolLayout, event: &Event) -> Vec<Placement> {
    assert_eq!(
        event.dims(),
        layout.dims(),
        "event dimensionality {} does not match layout {}",
        event.dims(),
        layout.dims()
    );
    assert!(event.dims() >= 2, "pool placement requires at least 2 dimensions");
    event
        .greatest_dims()
        .into_iter()
        .map(|dim| {
            let pool = layout.pool(dim);
            let v_d1 = event.value(dim);
            let v_d2 = event.v_d2_given_d1(dim);
            let (ho, vo) = offsets_for(v_d1, v_d2, pool.side);
            Placement { pool_dim: dim, cell: pool.cell_at(ho, vo) }
        })
        .collect()
}

/// The single cell where `event` is stored (Algorithm 1 plus §4.1): the
/// candidate cell closest to `detected_at`, the cell where the event was
/// sensed. Ties in distance resolve to the lower pool dimension.
///
/// # Panics
///
/// Same conditions as [`candidate_cells`].
pub fn storage_cell(
    layout: &PoolLayout,
    grid: &Grid,
    event: &Event,
    detected_at: CellCoord,
) -> Placement {
    let candidates = candidate_cells(layout, event);
    candidates
        .into_iter()
        .min_by(|a, b| {
            grid.cell_distance(detected_at, a.cell)
                .partial_cmp(&grid.cell_distance(detected_at, b.cell))
                .expect("distances are finite")
                .then(a.pool_dim.cmp(&b.pool_dim))
        })
        .expect("an event always has at least one greatest dimension")
}

/// Why an insertion failed.
///
/// Splitting delivery failures out of [`PoolError`] lets callers on a
/// lossy network distinguish *the event was valid but the radio gave up*
/// (retry later, count the drop) from genuine misuse.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertError {
    /// The event could not reach its storage cell: every retransmission of
    /// some hop was lost (bounded ARQ), or the destination lies in another
    /// network partition.
    Undeliverable {
        /// The detecting node the insertion started from.
        from: pool_netsim::node::NodeId,
        /// The index node (or delegate) the event was headed for.
        to: pool_netsim::node::NodeId,
        /// The last node the event actually reached.
        reached: pool_netsim::node::NodeId,
        /// Transmissions spent (and charged to the ledger) before giving
        /// up — 0 when no route existed at all.
        transmissions: u64,
    },
    /// Any non-delivery failure (validation, pathological routing).
    Pool(PoolError),
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Undeliverable { from, to, reached, transmissions } => write!(
                f,
                "insert undeliverable: {from} -> {to} stalled at {reached} \
                 after {transmissions} transmissions"
            ),
            InsertError::Pool(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InsertError {}

impl From<PoolError> for InsertError {
    fn from(e: PoolError) -> Self {
        InsertError::Pool(e)
    }
}

impl From<InsertError> for PoolError {
    fn from(e: InsertError) -> Self {
        match e {
            InsertError::Undeliverable { from, to, transmissions, .. } => {
                PoolError::Undeliverable { from, to, transmissions }
            }
            InsertError::Pool(e) => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use pool_netsim::geometry::Rect;

    fn figure2() -> (Grid, PoolLayout) {
        let grid = Grid::over(Rect::square(100.0), 5.0).unwrap();
        let layout = PoolLayout::with_pivots(
            &grid,
            5,
            vec![CellCoord::new(1, 2), CellCoord::new(2, 10), CellCoord::new(7, 3)],
        )
        .unwrap();
        (grid, layout)
    }

    #[test]
    fn paper_example_event_goes_to_c34() {
        // §3.1.2: E = <0.4, 0.3, 0.1> is stored in C(3,4) of P₁.
        let (grid, layout) = figure2();
        let event = Event::new(vec![0.4, 0.3, 0.1]).unwrap();
        let placement = storage_cell(&layout, &grid, &event, CellCoord::new(0, 0));
        assert_eq!(placement.pool_dim, 0);
        assert_eq!(placement.cell, CellCoord::new(3, 4));
    }

    #[test]
    fn stored_cell_ranges_contain_the_deciding_values() {
        // Theorem 3.1 invariant: the assigned cell's ranges contain
        // (V_d1, V_d2), for a spread of values including boundaries.
        let (_, layout) = figure2();
        let p = layout.pool(0);
        let values = [0.0, 0.05, 0.2, 0.25, 0.399, 0.4, 0.5, 0.79, 0.8, 0.999, 1.0];
        for &a in &values {
            for &b in &values {
                if b > a {
                    continue;
                }
                let (ho, vo) = offsets_for(a, b, p.side);
                assert!(p.range_h(ho).contains(a), "V_d1 = {a} not in {}", p.range_h(ho));
                assert!(
                    p.range_v(ho, vo).contains(b),
                    "V_d2 = {b} not in {} (V_d1 = {a})",
                    p.range_v(ho, vo)
                );
            }
        }
    }

    #[test]
    fn greatest_value_picks_the_pool() {
        let (grid, layout) = figure2();
        let event = Event::new(vec![0.1, 0.9, 0.5]).unwrap();
        let placement = storage_cell(&layout, &grid, &event, CellCoord::new(0, 0));
        assert_eq!(placement.pool_dim, 1);
        assert!(layout.pool(1).contains(placement.cell));
    }

    #[test]
    fn tied_event_yields_candidate_per_tied_dim() {
        // §4.1: E = <0.4, 0.4, 0.2>. With Figure 2's layout the candidates
        // are C(3,5) in P₁ (as printed in the paper) and C(4,13) in P₂.
        let (_, layout) = figure2();
        let event = Event::new(vec![0.4, 0.4, 0.2]).unwrap();
        let candidates = candidate_cells(&layout, &event);
        assert_eq!(candidates.len(), 2);
        assert_eq!(candidates[0], Placement { pool_dim: 0, cell: CellCoord::new(3, 5) });
        assert_eq!(candidates[1], Placement { pool_dim: 1, cell: CellCoord::new(4, 13) });
    }

    #[test]
    fn tied_event_stored_at_closest_candidate() {
        // §4.1: detected in C(8,12), the P₂ candidate is closer.
        let (grid, layout) = figure2();
        let event = Event::new(vec![0.4, 0.4, 0.2]).unwrap();
        let placement = storage_cell(&layout, &grid, &event, CellCoord::new(8, 12));
        assert_eq!(placement.pool_dim, 1);
        assert_eq!(placement.cell, CellCoord::new(4, 13));
        // Detected near the origin instead, the P₁ candidate wins.
        let placement = storage_cell(&layout, &grid, &event, CellCoord::new(2, 3));
        assert_eq!(placement.pool_dim, 0);
        assert_eq!(placement.cell, CellCoord::new(3, 5));
    }

    #[test]
    fn all_values_tied_yields_k_candidates() {
        let (grid, layout) = figure2();
        let event = Event::new(vec![0.6, 0.6, 0.6]).unwrap();
        let candidates = candidate_cells(&layout, &event);
        assert_eq!(candidates.len(), 3);
        // Exactly one copy is stored regardless.
        let placement = storage_cell(&layout, &grid, &event, CellCoord::new(10, 10));
        assert!(candidates.contains(&placement));
    }

    #[test]
    fn boundary_value_one_lands_in_last_cell() {
        let (_, layout) = figure2();
        let p = layout.pool(0);
        let (ho, vo) = offsets_for(1.0, 1.0, p.side);
        assert_eq!((ho, vo), (4, 4));
        assert!(p.range_h(ho).contains(1.0));
        assert!(p.range_v(ho, vo).contains(1.0));
    }

    #[test]
    fn zero_event_lands_in_pivot_cell() {
        let (grid, layout) = figure2();
        let event = Event::new(vec![0.0, 0.0, 0.0]).unwrap();
        let placement = storage_cell(&layout, &grid, &event, CellCoord::new(0, 0));
        // All dims tie at 0; the chosen cell is some pool's pivot cell.
        let pool = layout.pool(placement.pool_dim);
        assert_eq!(placement.cell, pool.pivot);
    }

    #[test]
    #[should_panic(expected = "exceeds greatest")]
    fn offsets_reject_inverted_values() {
        let _ = offsets_for(0.3, 0.5, 5);
    }

    #[test]
    #[should_panic(expected = "at least 2 dimensions")]
    fn placement_requires_two_dims() {
        let grid = Grid::over(Rect::square(50.0), 5.0).unwrap();
        let layout = PoolLayout::with_pivots(&grid, 3, vec![CellCoord::new(0, 0)]).unwrap();
        let event = Event::new(vec![0.5]).unwrap();
        let _ = candidate_cells(&layout, &event);
    }
}
