//! Query plans: an inspectable "EXPLAIN" for Pool queries.
//!
//! [`PoolSystem::explain`] performs the resolving phase of §3.2 without
//! touching the network and reports, per pool, the derived ranges of
//! Theorem 3.2, the pruning decision, the relevant cells with their
//! Equation-1 ranges, the splitter, and the paper's headline statistic:
//! what fraction of index nodes the query will *not* visit.

use crate::grid::CellCoord;
use crate::interval::Interval;
use crate::query::RangeQuery;
use crate::resolve::{derived_ranges, relevant_offsets_fast};
use crate::system::PoolSystem;
use crate::PoolError;
use pool_netsim::node::NodeId;
use std::fmt;

/// One relevant cell in a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedCell {
    /// The cell's grid coordinate.
    pub cell: CellCoord,
    /// Equation 1 horizontal range.
    pub range_h: Interval,
    /// Equation 1 vertical range.
    pub range_v: Interval,
    /// The index node that will be visited.
    pub index_node: NodeId,
}

/// The plan for one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolPlan {
    /// Pool dimension (0-based; the paper's `P_{dim+1}`).
    pub dim: usize,
    /// Theorem 3.2's `R_H` for this pool.
    pub r_h: Interval,
    /// Theorem 3.2's `R_V` for this pool.
    pub r_v: Interval,
    /// Whether the whole pool is pruned (empty derived range).
    pub pruned: bool,
    /// The splitter that would receive the query.
    pub splitter: Option<NodeId>,
    /// The relevant cells (empty if pruned).
    pub cells: Vec<PlannedCell>,
}

/// A complete query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The query as issued.
    pub query: RangeQuery,
    /// The §2 rewrite actually resolved.
    pub rewritten: Vec<(f64, f64)>,
    /// Per-pool plans, in dimension order.
    pub pools: Vec<PoolPlan>,
    /// Total cells in all pools (`k · l²`).
    pub total_cells: usize,
}

impl QueryPlan {
    /// Number of relevant cells across all pools.
    pub fn relevant_cells(&self) -> usize {
        self.pools.iter().map(|p| p.cells.len()).sum()
    }

    /// Fraction of cells pruned — the effectiveness claim of §3.2.
    pub fn pruned_fraction(&self) -> f64 {
        1.0 - self.relevant_cells() as f64 / self.total_cells as f64
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan for {}", self.query)?;
        writeln!(
            f,
            "  rewritten: {}",
            self.rewritten
                .iter()
                .map(|(l, u)| format!("[{l}, {u}]"))
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for pool in &self.pools {
            if pool.pruned {
                writeln!(
                    f,
                    "  P{}: pruned (R_H = {}, R_V = {})",
                    pool.dim + 1,
                    pool.r_h,
                    pool.r_v
                )?;
                continue;
            }
            writeln!(
                f,
                "  P{}: R_H = {}, R_V = {}, splitter {} -> {} cell(s)",
                pool.dim + 1,
                pool.r_h,
                pool.r_v,
                pool.splitter.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                pool.cells.len()
            )?;
            for c in &pool.cells {
                writeln!(f, "    {} H={} V={} @ {}", c.cell, c.range_h, c.range_v, c.index_node)?;
            }
        }
        write!(
            f,
            "  {} of {} cells relevant ({:.1}% pruned)",
            self.relevant_cells(),
            self.total_cells,
            self.pruned_fraction() * 100.0
        )
    }
}

impl PoolSystem {
    /// Computes the query plan a given sink would execute, without sending
    /// anything (no messages are charged).
    ///
    /// # Errors
    ///
    /// [`PoolError::DimensionMismatch`] if the query arity is wrong.
    pub fn explain(&self, sink: NodeId, query: &RangeQuery) -> Result<QueryPlan, PoolError> {
        if query.dims() != self.config().dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config().dims,
                got: query.dims(),
            });
        }
        let rewritten = query.rewritten();
        let mut pools = Vec::new();
        let mut total_cells = 0usize;
        for pool in self.layout().pools() {
            total_cells += (pool.side * pool.side) as usize;
            let ranges = derived_ranges(&rewritten, pool.dim);
            let offsets = relevant_offsets_fast(pool, &rewritten);
            let pruned = offsets.is_empty();
            let cells = offsets
                .into_iter()
                .map(|(ho, vo)| {
                    let cell = pool.cell_at(ho, vo);
                    PlannedCell {
                        cell,
                        range_h: pool.range_h(ho),
                        range_v: pool.range_v(ho, vo),
                        index_node: self.index_node_of(cell).expect("pool cell has index node"),
                    }
                })
                .collect::<Vec<_>>();
            pools.push(PoolPlan {
                dim: pool.dim,
                r_h: ranges.r_h,
                r_v: ranges.r_v,
                pruned,
                splitter: (!pruned).then(|| self.splitter_of(pool.dim, sink)),
                cells,
            });
        }
        Ok(QueryPlan { query: query.clone(), rewritten, pools, total_cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::grid::CellCoord;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::geometry::Rect;
    use pool_netsim::topology::Topology;

    fn figure2_system() -> PoolSystem {
        // A dense synthetic network over a 100 m field so Figure 2's exact
        // pivots fit.
        let mut seed = 50u64;
        loop {
            let dep = Deployment::new(
                Rect::square(100.0),
                200,
                pool_netsim::deployment::Placement::Uniform,
                seed,
            );
            let topo = Topology::build(dep.nodes(), 30.0).unwrap();
            if topo.is_connected() {
                let config = PoolConfig::paper().with_pool_side(5).with_pivots(vec![
                    CellCoord::new(1, 2),
                    CellCoord::new(2, 10),
                    CellCoord::new(7, 3),
                ]);
                return PoolSystem::build(topo, Rect::square(100.0), config).unwrap();
            }
            seed += 1;
        }
    }

    #[test]
    fn plan_matches_example_3_1() {
        let pool = figure2_system();
        let q = RangeQuery::exact(vec![(0.2, 0.3), (0.25, 0.35), (0.21, 0.24)]).unwrap();
        let plan = pool.explain(NodeId(0), &q).unwrap();
        assert_eq!(plan.pools.len(), 3);
        assert_eq!(plan.pools[0].cells.len(), 1);
        assert_eq!(plan.pools[0].cells[0].cell, CellCoord::new(2, 5));
        assert_eq!(plan.pools[1].cells.len(), 2);
        assert!(plan.pools[2].pruned, "P3 must be pruned (Figure 4)");
        assert_eq!(plan.relevant_cells(), 3);
        assert!(plan.pruned_fraction() > 0.9);
    }

    #[test]
    fn plan_display_is_readable() {
        let pool = figure2_system();
        let q = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))]).unwrap();
        let plan = pool.explain(NodeId(3), &q).unwrap();
        let text = plan.to_string();
        assert!(text.contains("plan for <*, *, [0.8, 0.84]>"));
        assert!(text.contains("pruned)"));
        assert!(text.contains("P1:"));
    }

    #[test]
    fn explain_charges_no_messages() {
        let pool = figure2_system();
        let before = pool.traffic().total_messages();
        let q = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let _ = pool.explain(NodeId(0), &q).unwrap();
        assert_eq!(pool.traffic().total_messages(), before);
    }

    #[test]
    fn plan_agrees_with_execution() {
        let mut pool = figure2_system();
        let q = RangeQuery::exact(vec![(0.1, 0.6), (0.2, 0.5), (0.0, 0.9)]).unwrap();
        let plan = pool.explain(NodeId(7), &q).unwrap();
        let result = pool.query_from(NodeId(7), &q).unwrap();
        assert_eq!(plan.relevant_cells(), result.relevant_cells);
        let planned_pools = plan.pools.iter().filter(|p| !p.pruned).count();
        assert_eq!(planned_pools, result.pools_visited);
    }

    #[test]
    fn explain_rejects_wrong_arity() {
        let pool = figure2_system();
        let q = RangeQuery::exact(vec![(0.0, 1.0)]).unwrap();
        assert!(matches!(pool.explain(NodeId(0), &q), Err(PoolError::DimensionMismatch { .. })));
    }
}
