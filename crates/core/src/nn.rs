//! Nearest-neighbor queries in event space — the paper's §6 extension
//! ("continuous monitoring of the nearest neighbor queries" is named as
//! ongoing work; this module provides the one-shot primitive).
//!
//! Given a probe point `p ∈ [0,1]^k`, find the stored event minimizing the
//! Euclidean distance to `p`. Pool's Equation-1 ranges give each cell a
//! sound *lower bound* on the distance of any event it can store:
//!
//! * events in cell `(ho, vo)` of pool `Pᵢ` have `Vᵢ ∈ Range_H(ho)`, and
//! * every other attribute is at most `Range_V(ho, vo).hi` (the cell's
//!   vertical range bounds the second-greatest value, which dominates all
//!   non-`i` attributes).
//!
//! The search visits cells in ascending lower-bound order and stops as soon
//! as the best event found is closer than the next cell's bound — a
//! classic best-first branch-and-bound, distributed over index nodes.

use crate::event::Event;
use crate::grid::CellCoord;
use crate::interval::Interval;
use crate::layout::PoolSpec;
use crate::system::{PoolSystem, QueryCost};
use crate::PoolError;
use pool_netsim::node::NodeId;
use pool_transport::metrics::LedgerSnapshot;
use pool_transport::trace::TraceOp;
use pool_transport::TrafficLayer;

/// Result of a nearest-neighbor query.
#[derive(Debug, Clone, PartialEq)]
pub struct NnResult {
    /// The nearest stored events, closest first (empty if nothing stored).
    pub neighbors: Vec<(Event, f64)>,
    /// Message cost of the distributed search.
    pub cost: QueryCost,
    /// Number of cells actually visited (pruning quality indicator).
    pub cells_visited: usize,
}

/// Distance from `v` to the closest point of `interval` (0 when inside).
fn point_to_interval(v: f64, interval: Interval) -> f64 {
    if v < interval.lo() {
        interval.lo() - v
    } else if v > interval.hi() {
        v - interval.hi()
    } else {
        0.0
    }
}

/// Sound lower bound on the Euclidean distance between `probe` and any
/// event that Theorem 3.1 could place in cell `(ho, vo)` of `pool`.
pub fn cell_distance_lower_bound(pool: &PoolSpec, ho: u32, vo: u32, probe: &[f64]) -> f64 {
    let range_h = pool.range_h(ho);
    let range_v = pool.range_v(ho, vo);
    let mut acc = point_to_interval(probe[pool.dim], range_h).powi(2);
    for (j, &p_j) in probe.iter().enumerate() {
        if j == pool.dim {
            continue;
        }
        // Every non-i attribute is ≤ the cell's vertical upper bound.
        let over = (p_j - range_v.hi()).max(0.0);
        acc += over * over;
    }
    acc.sqrt()
}

/// Euclidean distance between a probe and an event.
pub fn event_distance(probe: &[f64], event: &Event) -> f64 {
    probe.iter().zip(event.values()).map(|(p, v)| (p - v) * (p - v)).sum::<f64>().sqrt()
}

impl PoolSystem {
    /// Finds the `count` stored events nearest to `probe` (Euclidean, in
    /// event space), issuing the distributed search from `sink`.
    ///
    /// Message model: the sink unicasts the probe to each candidate cell's
    /// index node in ascending bound order; each visited node returns its
    /// best matches along the reverse path (aggregated, one message per
    /// hop).
    ///
    /// # Errors
    ///
    /// [`PoolError::DimensionMismatch`] if the probe arity is wrong or any
    /// value is outside `[0, 1]`; routing errors otherwise.
    pub fn k_nearest(
        &mut self,
        sink: NodeId,
        probe: &[f64],
        count: usize,
    ) -> Result<NnResult, PoolError> {
        if probe.len() != self.config().dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config().dims,
                got: probe.len(),
            });
        }
        if probe.iter().any(|v| !(0.0..=1.0).contains(v)) {
            return Err(PoolError::InvalidQuery {
                reason: "probe values must be normalized into [0, 1]".into(),
            });
        }
        // Rank every pool cell by its distance lower bound.
        let mut candidates: Vec<(f64, usize, CellCoord)> = Vec::new();
        for pool in self.layout().pools() {
            for ho in 0..pool.side {
                for vo in 0..pool.side {
                    let bound = cell_distance_lower_bound(pool, ho, vo, probe);
                    candidates.push((bound, pool.dim, pool.cell_at(ho, vo)));
                }
            }
        }
        candidates
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are finite").then(a.2.cmp(&b.2)));

        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut best: Vec<(Event, f64)> = Vec::new();
        let mut cost = QueryCost::default();
        let mut cells_visited = 0usize;
        for (bound, _, cell) in candidates {
            let kth_best = best.get(count.saturating_sub(1)).map(|(_, d)| *d);
            if let Some(kth) = kth_best {
                if bound >= kth {
                    break; // no unvisited cell can improve the answer
                }
            }
            cells_visited += 1;
            let index_node = self.index_node_of(cell).expect("candidate cells are pool cells");
            let fwd =
                self.route_and_record(TraceOp::Nearest, sink, index_node, TrafficLayer::Forward)?;
            cost.forward_messages += fwd.transmissions - fwd.retransmissions;
            cost.retransmit_messages += fwd.retransmissions;
            let local: Vec<(Event, f64)> = self
                .store()
                .events_in(cell)
                .iter()
                .map(|s| (s.event.clone(), event_distance(probe, &s.event)))
                .collect();
            if !local.is_empty() {
                // Aggregated reply along the reverse path.
                let back =
                    self.route_and_record(TraceOp::Nearest, index_node, sink, TrafficLayer::Reply)?;
                cost.reply_messages += back.transmissions - back.retransmissions;
                cost.retransmit_messages += back.retransmissions;
                best.extend(local);
                best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
                best.truncate(count);
            }
        }
        ledger_before.debug_assert_layers(
            self.transport.ledger(),
            "k_nearest",
            &[
                (TrafficLayer::Forward, cost.forward_messages),
                (TrafficLayer::Reply, cost.reply_messages),
                (TrafficLayer::Retransmit, cost.retransmit_messages),
            ],
        );
        Ok(NnResult { neighbors: best, cost, cells_visited })
    }

    /// Convenience wrapper: the single nearest event.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::k_nearest`].
    pub fn nearest(
        &mut self,
        sink: NodeId,
        probe: &[f64],
    ) -> Result<(Option<(Event, f64)>, QueryCost), PoolError> {
        let result = self.k_nearest(sink, probe, 1)?;
        Ok((result.neighbors.into_iter().next(), result.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::topology::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_system(seed: u64) -> PoolSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(300, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), PoolConfig::paper()).unwrap();
            }
            s += 1000;
        }
    }

    fn load_random(pool: &mut PoolSystem, count: usize, seed: u64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for _ in 0..count {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            pool.insert_from(NodeId(rng.gen_range(0..300)), e.clone()).unwrap();
            events.push(e);
        }
        events
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut pool = build_system(1);
        let events = load_random(&mut pool, 200, 10);
        let mut rng = StdRng::seed_from_u64(20);
        for _ in 0..25 {
            let probe = [rng.gen(), rng.gen(), rng.gen()];
            let (got, _) = pool.nearest(NodeId(5), &probe).unwrap();
            let want =
                events.iter().map(|e| event_distance(&probe, e)).fold(f64::INFINITY, f64::min);
            let got = got.expect("store is non-empty");
            assert!(
                (got.1 - want).abs() < 1e-12,
                "probe {probe:?}: got {} at {}, brute force {}",
                got.0,
                got.1,
                want
            );
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_ordering() {
        let mut pool = build_system(2);
        let events = load_random(&mut pool, 150, 11);
        let probe = [0.4, 0.6, 0.2];
        let result = pool.k_nearest(NodeId(9), &probe, 5).unwrap();
        assert_eq!(result.neighbors.len(), 5);
        let mut brute: Vec<f64> = events.iter().map(|e| event_distance(&probe, e)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, (_, d)) in result.neighbors.iter().enumerate() {
            assert!((d - brute[i]).abs() < 1e-12, "rank {i}: {d} vs {}", brute[i]);
        }
        // Distances are non-decreasing.
        for w in result.neighbors.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn pruning_visits_a_fraction_of_cells() {
        let mut pool = build_system(3);
        load_random(&mut pool, 300, 12);
        let total_cells = 3 * 10 * 10;
        let result = pool.k_nearest(NodeId(0), &[0.5, 0.3, 0.1], 1).unwrap();
        assert!(
            result.cells_visited < total_cells / 2,
            "visited {} of {total_cells} cells",
            result.cells_visited
        );
    }

    #[test]
    fn empty_store_returns_none() {
        let mut pool = build_system(4);
        let (got, cost) = pool.nearest(NodeId(0), &[0.5, 0.5, 0.5]).unwrap();
        assert!(got.is_none());
        // Without any events the search must scan every cell (no reply
        // traffic though).
        assert_eq!(cost.reply_messages, 0);
    }

    #[test]
    fn probe_validation() {
        let mut pool = build_system(5);
        assert!(matches!(
            pool.nearest(NodeId(0), &[0.5, 0.5]),
            Err(PoolError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            pool.nearest(NodeId(0), &[0.5, 0.5, 1.5]),
            Err(PoolError::InvalidQuery { .. })
        ));
    }

    #[test]
    fn lower_bound_is_sound() {
        // For random events and probes, the bound of the event's own cell
        // never exceeds the true distance.
        let mut rng = StdRng::seed_from_u64(7);
        let grid =
            crate::grid::Grid::over(pool_netsim::geometry::Rect::square(200.0), 5.0).unwrap();
        let layout = crate::layout::PoolLayout::random(&grid, 3, 10, 3).unwrap();
        for _ in 0..500 {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            let probe = [rng.gen(), rng.gen(), rng.gen()];
            for placement in crate::insert::candidate_cells(&layout, &e) {
                let pool = layout.pool(placement.pool_dim);
                let (ho, vo) = pool.offsets_of(placement.cell).unwrap();
                let bound = cell_distance_lower_bound(pool, ho, vo, &probe);
                let actual = event_distance(&probe, &e);
                assert!(
                    bound <= actual + 1e-9,
                    "bound {bound} exceeds distance {actual} for {e} probe {probe:?}"
                );
            }
        }
    }
}
