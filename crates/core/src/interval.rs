//! One-dimensional value intervals.
//!
//! Pool mixes two interval flavours: cell ranges from Equation 1 are
//! half-open `[lo, hi)`, while query ranges and the derived ranges of
//! Theorem 3.2 are closed `[lo, hi]`. Getting the boundary cases right
//! matters — e.g. a query range ending exactly at a cell's lower bound must
//! select that cell, while one ending at its upper bound must not.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an interval includes its upper endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpperBound {
    /// `[lo, hi)` — cell ranges (Equation 1).
    Open,
    /// `[lo, hi]` — query ranges and Theorem 3.2's derived ranges.
    Closed,
}

/// An interval over normalized attribute values. The lower endpoint is
/// always included; the upper endpoint may be open or closed.
///
/// An interval with `lo > hi` (or `lo == hi` when half-open) is **empty**;
/// Theorem 3.2 produces such intervals naturally for pools that cannot hold
/// qualifying events (e.g. `R_H³ = [0.25, 0.24]` in Example 3.1).
///
/// # Examples
///
/// ```
/// use pool_core::interval::Interval;
///
/// let cell = Interval::half_open(0.2, 0.4);
/// let derived = Interval::closed(0.4, 0.5);
/// assert!(!cell.intersects(derived)); // 0.4 is outside [0.2, 0.4)
/// assert!(cell.intersects(Interval::closed(0.3, 0.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
    upper: UpperBound,
}

impl Interval {
    /// The half-open interval `[lo, hi)`.
    pub fn half_open(lo: f64, hi: f64) -> Self {
        Interval { lo, hi, upper: UpperBound::Open }
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        Interval { lo, hi, upper: UpperBound::Closed }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether the upper endpoint is included.
    pub fn upper(&self) -> UpperBound {
        self.upper
    }

    /// Whether the interval contains no values.
    pub fn is_empty(&self) -> bool {
        match self.upper {
            UpperBound::Open => self.lo >= self.hi,
            UpperBound::Closed => self.lo > self.hi,
        }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        if v < self.lo {
            return false;
        }
        match self.upper {
            UpperBound::Open => v < self.hi,
            UpperBound::Closed => v <= self.hi,
        }
    }

    /// Whether the two intervals share at least one value, respecting each
    /// side's upper-bound openness.
    pub fn intersects(&self, other: Interval) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        // The intersection's lower bound is max(lo); its upper bound is the
        // smaller hi (with that side's openness). Non-empty iff lower bound
        // is below the upper bound, or equals it when closed.
        let lo = self.lo.max(other.lo);
        let self_ok = match self.upper {
            UpperBound::Open => lo < self.hi,
            UpperBound::Closed => lo <= self.hi,
        };
        let other_ok = match other.upper {
            UpperBound::Open => lo < other.hi,
            UpperBound::Closed => lo <= other.hi,
        };
        self_ok && other_ok
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.upper {
            UpperBound::Open => write!(f, "[{}, {})", self.lo, self.hi),
            UpperBound::Closed => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_openness() {
        let open = Interval::half_open(0.0, 1.0);
        assert!(open.contains(0.0));
        assert!(!open.contains(1.0));
        let closed = Interval::closed(0.0, 1.0);
        assert!(closed.contains(1.0));
    }

    #[test]
    fn emptiness() {
        assert!(Interval::half_open(0.5, 0.5).is_empty());
        assert!(!Interval::closed(0.5, 0.5).is_empty());
        assert!(Interval::closed(0.25, 0.24).is_empty()); // Example 3.1, P3
    }

    #[test]
    fn intersection_at_shared_endpoint() {
        // Closed meets half-open exactly at the half-open lower bound.
        assert!(Interval::closed(0.1, 0.2).intersects(Interval::half_open(0.2, 0.4)));
        // Closed ending at the half-open *upper* bound does not intersect.
        assert!(!Interval::closed(0.4, 0.5).intersects(Interval::half_open(0.2, 0.4)));
        // Two closed intervals touching do intersect.
        assert!(Interval::closed(0.0, 0.2).intersects(Interval::closed(0.2, 0.4)));
    }

    #[test]
    fn intersection_is_symmetric() {
        let cases = [
            (Interval::half_open(0.0, 0.3), Interval::closed(0.2, 0.5)),
            (Interval::half_open(0.0, 0.2), Interval::closed(0.2, 0.5)),
            (Interval::closed(0.0, 0.2), Interval::half_open(0.2, 0.5)),
            (Interval::half_open(0.1, 0.1), Interval::closed(0.0, 1.0)),
        ];
        for (a, b) in cases {
            assert_eq!(a.intersects(b), b.intersects(a), "{a} vs {b}");
        }
    }

    #[test]
    fn empty_intervals_never_intersect() {
        let empty = Interval::closed(0.5, 0.4);
        assert!(!empty.intersects(Interval::closed(0.0, 1.0)));
        assert!(!Interval::closed(0.0, 1.0).intersects(empty));
    }

    #[test]
    fn disjoint_intervals() {
        assert!(!Interval::closed(0.0, 0.1).intersects(Interval::closed(0.2, 0.3)));
        assert!(!Interval::half_open(0.5, 0.7).intersects(Interval::half_open(0.0, 0.5)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Interval::half_open(0.0, 0.2).to_string(), "[0, 0.2)");
        assert_eq!(Interval::closed(0.0, 0.2).to_string(), "[0, 0.2]");
    }
}
