//! Query forwarding over the splitter tree (§3.2.3).
//!
//! The sink sends the query to one *splitter* per relevant pool (the
//! pool's index node closest to the sink); each splitter fans the query
//! out to the relevant cells and their delegation chains; replies retrace
//! the same paths, aggregated at the splitter. Standing-query
//! installation/removal reuses the same dissemination tree.
//!
//! Every leg is routed and charged through the system's
//! [`pool_transport::Transport`]: forwarding under
//! [`TrafficLayer::Forward`], replies under [`TrafficLayer::Reply`], and
//! monitor control traffic under [`TrafficLayer::Monitor`].

use crate::error::PoolError;
use crate::event::Event;
use crate::grid::CellCoord;
use crate::monitor::MonitorId;
use crate::query::RangeQuery;
use crate::resolve::{group_by_pool, relevant_cells};
use crate::system::PoolSystem;
use pool_netsim::node::NodeId;
use pool_transport::metrics::LedgerSnapshot;
use pool_transport::trace::TraceOp;
use pool_transport::TrafficLayer;
use std::collections::{HashMap, HashSet};

/// Message-count and virtual-time breakdown for one query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryCost {
    /// Messages spent forwarding the query (sink → splitters → cells →
    /// delegates).
    pub forward_messages: u64,
    /// Messages spent returning qualifying events.
    pub reply_messages: u64,
    /// ARQ retransmissions spent on this query's legs (0 on a loss-free
    /// radio).
    pub retransmit_messages: u64,
    /// Virtual time spent on forward legs, summed over legs, in seconds.
    /// A serial (per-leg) breakdown — overlapping legs each contribute
    /// their full duration, so this can exceed [`QueryCost::elapsed`].
    pub forward_latency: f64,
    /// Virtual time spent on reply legs, summed over legs, in seconds.
    pub reply_latency: f64,
    /// End-to-end virtual time of the operation, in seconds: the critical
    /// path through the leg tree. Pools are queried concurrently and each
    /// splitter fans out to its cells concurrently, so parallel branches
    /// overlap instead of summing.
    pub elapsed: f64,
}

impl QueryCost {
    /// Total messages — the paper's per-query cost metric.
    pub fn total(&self) -> u64 {
        self.forward_messages + self.reply_messages + self.retransmit_messages
    }
}

/// How much of a query's relevant-cell set actually answered — the
/// partial-result report for lossy radios (§3.2.3 degraded mode).
///
/// A cell counts as *reached* only when the query got to it **and** its
/// full reply got back: every event the result claims from a reached cell
/// is guaranteed present. Cells whose forward leg or reply leg died are
/// listed in [`Completeness::unreached_cells`] so the sink knows exactly
/// which slices of the answer are missing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Completeness {
    /// Relevant cells the resolver named (Theorem 3.2's output size).
    pub cells_relevant: usize,
    /// Cells that both received the query and returned their full reply.
    pub cells_reached: usize,
    /// The `(pool_dim, cell)` pairs that did not fully answer, in
    /// resolution order.
    pub unreached_cells: Vec<(usize, CellCoord)>,
}

impl Completeness {
    /// Fraction of relevant cells that fully answered (1.0 when no cells
    /// were relevant — an empty answer is complete).
    pub fn ratio(&self) -> f64 {
        if self.cells_relevant == 0 {
            1.0
        } else {
            self.cells_reached as f64 / self.cells_relevant as f64
        }
    }

    /// Whether every relevant cell fully answered.
    pub fn is_complete(&self) -> bool {
        self.unreached_cells.is_empty()
    }
}

/// The outcome of an aggregate query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// The aggregate value, or `None` for a value aggregate over an empty
    /// result set (COUNT of nothing is `Some(0.0)`).
    pub value: Option<f64>,
    /// Message cost breakdown.
    pub cost: QueryCost,
    /// Which relevant cells contributed. An aggregate computed over a
    /// partial harsh-radio answer is *not* authoritative — callers must
    /// check [`Completeness::is_complete`] before trusting the value.
    pub completeness: Completeness,
}

/// Receipt for a continuous-monitor installation.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorInstall {
    /// Handle for removal and notification matching.
    pub id: MonitorId,
    /// Dissemination cost of the installation.
    pub cost: QueryCost,
    /// Which relevant cells the installation actually reached — only those
    /// are watching, so a sink seeing an incomplete install knows its
    /// coverage is narrowed.
    pub completeness: Completeness,
}

/// The outcome of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// All qualifying events, in pool/cell resolution order.
    pub events: Vec<Event>,
    /// Message cost breakdown.
    pub cost: QueryCost,
    /// Number of relevant cells visited (Theorem 3.2's output size).
    pub relevant_cells: usize,
    /// Number of pools that had at least one relevant cell.
    pub pools_visited: usize,
    /// Which relevant cells fully answered (always complete on a loss-free
    /// radio).
    pub completeness: Completeness,
}

/// Aggregate operations computable at splitters (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Number of qualifying events.
    Count,
    /// Sum of one attribute over qualifying events.
    Sum(usize),
    /// Mean of one attribute.
    Avg(usize),
    /// Minimum of one attribute.
    Min(usize),
    /// Maximum of one attribute.
    Max(usize),
}

impl AggregateOp {
    /// Applies the operation to a set of qualifying events. Returns `None`
    /// for value aggregates over an empty set (COUNT of nothing is 0).
    ///
    /// Min/Max use [`f64::total_cmp`], so they are well-defined even if an
    /// attribute value is NaN (NaN orders above every number, hence a NaN
    /// never wins Min and always wins Max).
    pub fn apply(&self, events: &[Event]) -> Option<f64> {
        match *self {
            AggregateOp::Count => Some(events.len() as f64),
            AggregateOp::Sum(d) => {
                (!events.is_empty()).then(|| events.iter().map(|e| e.value(d)).sum())
            }
            AggregateOp::Avg(d) => (!events.is_empty())
                .then(|| events.iter().map(|e| e.value(d)).sum::<f64>() / events.len() as f64),
            AggregateOp::Min(d) => events.iter().map(|e| e.value(d)).min_by(|a, b| a.total_cmp(b)),
            AggregateOp::Max(d) => events.iter().map(|e| e.value(d)).max_by(|a, b| a.total_cmp(b)),
        }
    }
}

impl PoolSystem {
    /// The splitter of pool `dim` for a query issued at `sink`: the pool's
    /// index node closest to the sink (§3.2.3).
    pub fn splitter_of(&self, dim: usize, sink: NodeId) -> NodeId {
        let sink_pos = self.topology.position(sink);
        let pool = self.layout.pool(dim);
        pool.cells()
            .map(|c| self.index_nodes[&c])
            .min_by(|&a, &b| {
                self.topology
                    .position(a)
                    .distance_sq(sink_pos)
                    .partial_cmp(&self.topology.position(b).distance_sq(sink_pos))
                    .expect("positions are finite")
                    .then(a.cmp(&b))
            })
            .expect("pools have at least one cell")
    }

    /// Processes a query issued at `sink` (§3.2): resolve → forward via
    /// splitters → collect matching events → return replies.
    ///
    /// On a lossy radio the query degrades instead of failing: every leg
    /// travels through [`pool_transport::Transport::deliver`], and a leg
    /// that exhausts its ARQ budget (or has no route, e.g. across a
    /// partition) marks the affected cells unreached in the result's
    /// [`QueryResult::completeness`] rather than aborting. Events claimed
    /// from reached cells are guaranteed complete.
    ///
    /// # Errors
    ///
    /// [`PoolError::DimensionMismatch`] for wrong arity and
    /// [`PoolError::Routing`] on pathological (non-delivery) routing
    /// failures.
    pub fn query_from(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
    ) -> Result<QueryResult, PoolError> {
        self.query_restricted(sink, query, None)
    }

    /// Processes a query restricted to the given pool dimensions.
    ///
    /// Pools are independent branches of the §3.2.3 forwarding tree — the
    /// sink launches one packet per relevant pool and no state crosses
    /// branches — so a full query decomposes exactly into per-pool
    /// restricted queries: message counts, per-leg latencies, and ledger
    /// charges all add up, and the full query's `elapsed` is the max over
    /// the restricted ones. This is the decomposition the sharded service
    /// layer runs on: each shard owns a pool subset and answers only its
    /// slice. The returned [`QueryResult::completeness`] counts only cells
    /// of the restricted pools.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::query_from`].
    pub fn query_pools_from(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
        pools: &[usize],
    ) -> Result<QueryResult, PoolError> {
        self.query_restricted(sink, query, Some(pools))
    }

    fn query_restricted(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
        pools: Option<&[usize]>,
    ) -> Result<QueryResult, PoolError> {
        if query.dims() != self.config.dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config.dims,
                got: query.dims(),
            });
        }
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut relevant = relevant_cells(&self.layout, query);
        if let Some(pools) = pools {
            relevant.retain(|(dim, _)| pools.contains(dim));
        }
        let by_pool = group_by_pool(&relevant);

        let mut cost = QueryCost::default();
        let mut events = Vec::new();
        let mut pools_visited = 0usize;
        // Delivery status per relevant cell; finalized into the
        // completeness report at the end (a cell can be demoted late, when
        // its reply dies on the splitter → sink leg).
        let mut reached: HashMap<(usize, CellCoord), bool> = HashMap::new();

        // Virtual-time bracket: the sink launches one packet per relevant
        // pool at `op_start`, so pools overlap; within a pool the splitter
        // fans out to its cells concurrently from `t_split`. The operation
        // ends at the latest branch (critical path), not the branch sum.
        let op_start = self.transport.clock().now();
        let mut op_end = op_start;

        for (dim, cells) in by_pool {
            op_end = op_end.max(self.transport.clock().now());
            self.transport.clock_mut().seek(op_start);
            pools_visited += 1;
            let splitter = self.splitter_of(dim, sink);
            self.splitters_used.insert(splitter);
            let to_splitter = match self.transport.route_to_node(&self.topology, sink, splitter) {
                Ok(route) => route,
                Err(pool_gpsr::RouteError::NotDelivered { .. }) => {
                    // The splitter is unreachable (partition): the whole
                    // pool goes unanswered.
                    reached.extend(cells.iter().map(|&c| ((dim, c), false)));
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let (fwd, to_splitter) =
                self.deliver_with_recovery(TraceOp::Query, to_splitter, TrafficLayer::Forward);
            cost.forward_messages += fwd.transmissions - fwd.retransmissions;
            cost.retransmit_messages += fwd.retransmissions;
            cost.forward_latency += fwd.latency;
            if !fwd.delivered {
                reached.extend(cells.iter().map(|&c| ((dim, c), false)));
                continue;
            }

            // The splitter fans out to its cells concurrently from here.
            let t_split = self.transport.clock().now();
            let mut pool_end = t_split;

            // Replies buffered at the splitter, per contributing cell, so a
            // lost splitter → sink leg can demote exactly its contributors.
            let mut pool_buffer: Vec<(CellCoord, Vec<Event>)> = Vec::new();
            for &cell in &cells {
                pool_end = pool_end.max(self.transport.clock().now());
                self.transport.clock_mut().seek(t_split);
                let index_node = self.index_nodes[&cell];
                let to_cell =
                    match self.transport.route_to_node(&self.topology, splitter, index_node) {
                        Ok(route) => route,
                        Err(pool_gpsr::RouteError::NotDelivered { .. }) => {
                            reached.insert((dim, cell), false);
                            continue;
                        }
                        Err(e) => return Err(e.into()),
                    };
                let (fwd, to_cell) =
                    self.deliver_with_recovery(TraceOp::Query, to_cell, TrafficLayer::Forward);
                cost.forward_messages += fwd.transmissions - fwd.retransmissions;
                cost.retransmit_messages += fwd.retransmissions;
                cost.forward_latency += fwd.latency;
                if !fwd.delivered {
                    reached.insert((dim, cell), false);
                    continue;
                }

                // The query also visits the cell's delegation chain, one hop
                // per link, since delegated events live off the index node.
                let chain = self.delegates_of(cell).to_vec();
                if !chain.is_empty() {
                    let mut walk = vec![index_node];
                    walk.extend_from_slice(&chain);
                    let w =
                        self.deliver_with_path_retry(TraceOp::Query, &walk, TrafficLayer::Forward);
                    cost.forward_messages += w.transmissions - w.retransmissions;
                    cost.retransmit_messages += w.retransmissions;
                    cost.forward_latency += w.latency;
                    if !w.delivered {
                        // Delegated events live past the stall point; the
                        // cell's answer would be silently partial, so the
                        // whole cell is reported unreached.
                        reached.insert((dim, cell), false);
                        continue;
                    }
                }

                let mut matches: Vec<Event> = self
                    .store
                    .events_in(cell)
                    .iter()
                    .filter(|s| query.matches(&s.event))
                    .map(|s| s.event.clone())
                    .collect();
                if matches.is_empty() {
                    reached.insert((dim, cell), true);
                    continue;
                }
                // Reply: the cell's events retrace the forwarding legs.
                // Delegated matches first travel the chain back to the
                // index node (tail → … → index node), then everything
                // retraces cell → splitter. Both legs are real deliveries
                // through the transport — chain replies used to be charged
                // as phantom messages the ledger never saw and loss could
                // never touch.
                let mut copies =
                    if self.config.aggregate_replies { 1 } else { matches.len() as u64 };
                let mut cell_ok = true;
                if !chain.is_empty() {
                    let mut walk = vec![index_node];
                    walk.extend_from_slice(&chain);
                    let rev = self.deliver_reverse_with_retry(
                        TraceOp::Query,
                        &walk,
                        copies,
                        TrafficLayer::Reply,
                    );
                    cost.reply_messages += rev.transmissions - rev.retransmissions;
                    cost.retransmit_messages += rev.retransmissions;
                    cost.reply_latency += rev.latency;
                    if rev.delivered_copies < copies {
                        // A dead chain-reply leg strands delegated events
                        // past the stall: the cell's answer is partial.
                        cell_ok = false;
                        if self.config.aggregate_replies {
                            // The single aggregated packet died on the
                            // chain: nothing leaves the cell.
                            reached.insert((dim, cell), false);
                            continue;
                        }
                        matches.truncate(rev.delivered_copies as usize);
                        if matches.is_empty() {
                            reached.insert((dim, cell), false);
                            continue;
                        }
                        copies = matches.len() as u64;
                    }
                }
                let rev = self.deliver_reverse_with_retry(
                    TraceOp::Query,
                    &to_cell.path,
                    copies,
                    TrafficLayer::Reply,
                );
                cost.reply_messages += rev.transmissions - rev.retransmissions;
                cost.retransmit_messages += rev.retransmissions;
                cost.reply_latency += rev.latency;
                let kept: Vec<Event> = if self.config.aggregate_replies {
                    // One aggregated packet: all or nothing.
                    if rev.delivered_copies == 1 {
                        matches
                    } else {
                        Vec::new()
                    }
                } else {
                    matches.into_iter().take(rev.delivered_copies as usize).collect()
                };
                reached.insert((dim, cell), cell_ok && rev.delivered_copies == copies);
                if !kept.is_empty() {
                    pool_buffer.push((cell, kept));
                }
            }

            // The splitter can only aggregate once its slowest cell branch
            // has answered (or given up): the splitter → sink reply launches
            // at the pool's critical-path end.
            pool_end = pool_end.max(self.transport.clock().now());
            self.transport.clock_mut().seek(pool_end);

            let pool_matches: usize = pool_buffer.iter().map(|(_, e)| e.len()).sum();
            if pool_matches > 0 {
                // Aggregated reply from the splitter to the sink.
                let copies = if self.config.aggregate_replies { 1 } else { pool_matches as u64 };
                let rev = self.deliver_reverse_with_retry(
                    TraceOp::Query,
                    &to_splitter.path,
                    copies,
                    TrafficLayer::Reply,
                );
                cost.reply_messages += rev.transmissions - rev.retransmissions;
                cost.retransmit_messages += rev.retransmissions;
                cost.reply_latency += rev.latency;
                if self.config.aggregate_replies {
                    if rev.delivered_copies == 1 {
                        events.extend(pool_buffer.into_iter().flat_map(|(_, e)| e));
                    } else {
                        // The single aggregated packet died: every cell that
                        // contributed loses its claim.
                        for (cell, _) in pool_buffer {
                            reached.insert((dim, cell), false);
                        }
                    }
                } else {
                    // Unaggregated copies die independently; keep the first
                    // `delivered_copies` in buffer order and demote cells
                    // whose events were clipped.
                    let mut budget = rev.delivered_copies as usize;
                    for (cell, cell_events) in pool_buffer {
                        let take = cell_events.len().min(budget);
                        budget -= take;
                        if take < cell_events.len() {
                            reached.insert((dim, cell), false);
                        }
                        events.extend(cell_events.into_iter().take(take));
                    }
                }
            }
        }

        // Close the bracket: the query is answered when the slowest pool
        // branch finishes.
        op_end = op_end.max(self.transport.clock().now());
        self.transport.clock_mut().seek(op_end);
        cost.elapsed = op_end - op_start;

        let unreached_cells: Vec<(usize, CellCoord)> = relevant
            .iter()
            .copied()
            .filter(|key| !reached.get(key).copied().unwrap_or(false))
            .collect();
        let completeness = Completeness {
            cells_relevant: relevant.len(),
            cells_reached: relevant.len() - unreached_cells.len(),
            unreached_cells,
        };
        ledger_before.debug_assert_layers(
            self.transport.ledger(),
            "query_from",
            &[
                (TrafficLayer::Forward, cost.forward_messages),
                (TrafficLayer::Reply, cost.reply_messages),
                (TrafficLayer::Retransmit, cost.retransmit_messages),
            ],
        );
        Ok(QueryResult {
            events,
            cost,
            relevant_cells: relevant.len(),
            pools_visited,
            completeness,
        })
    }

    /// Runs an aggregate query (§3.2.3): same forwarding as
    /// [`PoolSystem::query_from`], but only the aggregate value travels
    /// back. Returns the aggregate (if defined), the cost, and the
    /// completeness of the contributing cell set — an aggregate over a
    /// partial answer used to report itself exactly like an authoritative
    /// one; now the caller can tell.
    ///
    /// # Errors
    ///
    /// Same as [`PoolSystem::query_from`].
    pub fn aggregate_from(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
        op: AggregateOp,
    ) -> Result<AggregateResult, PoolError> {
        // Aggregates always travel as single messages, regardless of the
        // reply-aggregation ablation flag.
        let saved = self.config.aggregate_replies;
        self.config.aggregate_replies = true;
        let result = self.query_from(sink, query);
        self.config.aggregate_replies = saved;
        let result = result?;
        Ok(AggregateResult {
            value: op.apply(&result.events),
            cost: result.cost,
            completeness: result.completeness,
        })
    }

    /// Installs a continuous monitoring query (§6): `sink` will be notified
    /// of every future insertion matching `query`. Installation is
    /// forwarded like a one-shot query (sink → splitters → relevant
    /// cells); the returned receipt carries the dissemination cost and the
    /// installed-cell completeness — on a lossy radio only the reached
    /// cells watch, and the sink deserves to know its coverage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::query_from`].
    pub fn install_monitor(
        &mut self,
        sink: NodeId,
        query: RangeQuery,
    ) -> Result<MonitorInstall, PoolError> {
        self.install_monitor_restricted(sink, query, None)
    }

    /// Installs a continuous monitor restricted to the given pool
    /// dimensions — the dissemination tree touches only the restricted
    /// pools' cells, and only those cells watch. Like
    /// [`PoolSystem::query_pools_from`], this is the exact per-pool
    /// decomposition of [`PoolSystem::install_monitor`]: the sharded
    /// service installs each monitor slice on the shard that owns the
    /// pool, and the union of slices watches exactly the full monitor's
    /// cell set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::query_from`].
    pub fn install_monitor_pools(
        &mut self,
        sink: NodeId,
        query: RangeQuery,
        pools: &[usize],
    ) -> Result<MonitorInstall, PoolError> {
        self.install_monitor_restricted(sink, query, Some(pools))
    }

    fn install_monitor_restricted(
        &mut self,
        sink: NodeId,
        query: RangeQuery,
        pools: Option<&[usize]>,
    ) -> Result<MonitorInstall, PoolError> {
        if query.dims() != self.config.dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config.dims,
                got: query.dims(),
            });
        }
        let mut relevant = relevant_cells(&self.layout, &query);
        if let Some(pools) = pools {
            relevant.retain(|(dim, _)| pools.contains(dim));
        }
        let (cost, installed_at) = self.disseminate(sink, &relevant)?;
        // Only cells the installation actually reached will notify; on a
        // loss-free radio that is every relevant cell.
        let installed: HashSet<(usize, CellCoord)> = installed_at.iter().copied().collect();
        let unreached_cells: Vec<(usize, CellCoord)> =
            relevant.iter().copied().filter(|key| !installed.contains(key)).collect();
        let completeness = Completeness {
            cells_relevant: relevant.len(),
            cells_reached: installed_at.len(),
            unreached_cells,
        };
        let cells: Vec<CellCoord> = installed_at.iter().map(|&(_, c)| c).collect();
        let id = self.monitors.install(sink, query, &cells);
        Ok(MonitorInstall { id, cost, completeness })
    }

    /// Removes a continuous monitoring query, forwarding the removal to the
    /// cells that were watching (same tree as installation).
    ///
    /// Returns the removal's dissemination cost, or `None` if the handle
    /// was not installed.
    ///
    /// # Errors
    ///
    /// Routing failures while disseminating the removal.
    pub fn remove_monitor(&mut self, id: MonitorId) -> Result<Option<QueryCost>, PoolError> {
        let Some(monitor) = self.monitors.get(id).cloned() else {
            return Ok(None);
        };
        let cells = self.monitors.cells_of(id);
        let relevant: Vec<(usize, CellCoord)> = cells
            .into_iter()
            .filter_map(|c| self.layout.pool_of_cell(c).map(|p| (p.dim, c)))
            .collect();
        // Removal is best-effort on a lossy radio: the handle is dropped
        // locally regardless of which cells the removal packet reached (a
        // straggler cell would notify a sink that ignores the handle).
        let (cost, _) = self.disseminate(monitor.sink, &relevant)?;
        self.monitors.remove(id);
        Ok(Some(cost))
    }

    /// Forwards a control message (installation/removal) from `sink` to
    /// every cell in `relevant` through the splitter tree, charging only
    /// forward messages (under [`TrafficLayer::Monitor`]). Returns the
    /// cost and the subset of `relevant` actually reached — on a lossy
    /// radio a dead leg skips the affected cells instead of failing.
    fn disseminate(
        &mut self,
        sink: NodeId,
        relevant: &[(usize, CellCoord)],
    ) -> Result<(QueryCost, Vec<(usize, CellCoord)>), PoolError> {
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut cost = QueryCost::default();
        let mut delivered_to = Vec::new();
        // Same virtual-time bracket as a query: pools in parallel from
        // `op_start`, cells in parallel from each splitter's `t_split`.
        let op_start = self.transport.clock().now();
        let mut op_end = op_start;
        for (dim, cells) in group_by_pool(relevant) {
            op_end = op_end.max(self.transport.clock().now());
            self.transport.clock_mut().seek(op_start);
            let splitter = self.splitter_of(dim, sink);
            self.splitters_used.insert(splitter);
            let to_splitter = match self.transport.route_to_node(&self.topology, sink, splitter) {
                Ok(route) => route,
                Err(pool_gpsr::RouteError::NotDelivered { .. }) => continue,
                Err(e) => return Err(e.into()),
            };
            let fwd =
                self.deliver_traced(TraceOp::Monitor, &to_splitter.path, TrafficLayer::Monitor);
            cost.forward_messages += fwd.transmissions - fwd.retransmissions;
            cost.retransmit_messages += fwd.retransmissions;
            cost.forward_latency += fwd.latency;
            if !fwd.delivered {
                continue;
            }
            let t_split = self.transport.clock().now();
            let mut pool_end = t_split;
            for &cell in &cells {
                pool_end = pool_end.max(self.transport.clock().now());
                self.transport.clock_mut().seek(t_split);
                let index_node = self.index_nodes[&cell];
                let to_cell =
                    match self.transport.route_to_node(&self.topology, splitter, index_node) {
                        Ok(route) => route,
                        Err(pool_gpsr::RouteError::NotDelivered { .. }) => continue,
                        Err(e) => return Err(e.into()),
                    };
                let fwd =
                    self.deliver_traced(TraceOp::Monitor, &to_cell.path, TrafficLayer::Monitor);
                cost.forward_messages += fwd.transmissions - fwd.retransmissions;
                cost.retransmit_messages += fwd.retransmissions;
                cost.forward_latency += fwd.latency;
                if fwd.delivered {
                    delivered_to.push((dim, cell));
                }
            }
            pool_end = pool_end.max(self.transport.clock().now());
            self.transport.clock_mut().seek(pool_end);
        }
        op_end = op_end.max(self.transport.clock().now());
        self.transport.clock_mut().seek(op_end);
        cost.elapsed = op_end - op_start;
        ledger_before.debug_assert_layers(
            self.transport.ledger(),
            "disseminate",
            &[
                (TrafficLayer::Monitor, cost.forward_messages),
                (TrafficLayer::Retransmit, cost.retransmit_messages),
            ],
        );
        Ok((cost, delivered_to))
    }

    /// Brute-force ground truth: all stored events matching `query`,
    /// regardless of placement. Used by tests and correctness audits.
    pub fn brute_force_query(&self, query: &RangeQuery) -> Vec<Event> {
        let mut out = Vec::new();
        for (_, stored) in self.store.iter() {
            for s in stored {
                if query.matches(&s.event) {
                    out.push(s.event.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::system::testkit::{build_system, ev};

    #[test]
    fn insert_and_exact_query_roundtrip() {
        let mut pool = build_system(300, 1, PoolConfig::paper());
        pool.insert_from(NodeId(0), ev(&[0.62, 0.3, 0.11])).unwrap();
        pool.insert_from(NodeId(10), ev(&[0.9, 0.8, 0.7])).unwrap();
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.2, 0.4), (0.0, 0.5)]).unwrap();
        let result = pool.query_from(NodeId(50), &q).unwrap();
        assert_eq!(result.events, vec![ev(&[0.62, 0.3, 0.11])]);
        assert!(result.cost.total() > 0);
    }

    #[test]
    fn query_matches_brute_force_over_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut pool = build_system(300, 2, PoolConfig::paper());
        let mut rng = StdRng::seed_from_u64(77);
        let n = pool.topology().len();
        for _ in 0..300 {
            let src = NodeId(rng.gen_range(0..n as u32));
            let event = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            pool.insert_from(src, event).unwrap();
        }
        for trial in 0..20 {
            let mut bounds = Vec::new();
            for _ in 0..3 {
                if rng.gen_bool(0.3) {
                    bounds.push(None);
                } else {
                    let lo: f64 = rng.gen_range(0.0..0.8);
                    let hi = (lo + rng.gen_range(0.0..0.4)).min(1.0);
                    bounds.push(Some((lo, hi)));
                }
            }
            if bounds.iter().all(Option::is_none) {
                bounds[0] = Some((0.1, 0.9));
            }
            let q = RangeQuery::from_bounds(bounds).unwrap();
            let sink = NodeId(rng.gen_range(0..n as u32));
            let mut got = pool.query_from(sink, &q).unwrap().events;
            let mut want = pool.brute_force_query(&q);
            let key = |e: &Event| e.values().iter().map(|v| (v * 1e9) as i64).collect::<Vec<_>>();
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "trial {trial} query {q}");
        }
    }

    #[test]
    fn empty_store_query_returns_nothing_but_still_forwards() {
        let mut pool = build_system(300, 5, PoolConfig::paper());
        let q = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let result = pool.query_from(NodeId(0), &q).unwrap();
        assert!(result.events.is_empty());
        assert_eq!(result.cost.reply_messages, 0);
        assert!(result.cost.forward_messages > 0);
        assert_eq!(result.pools_visited, 3);
    }

    #[test]
    fn splitter_is_closest_pool_index_node() {
        let pool = build_system(300, 6, PoolConfig::paper());
        let sink = NodeId(17);
        let splitter = pool.splitter_of(0, sink);
        let sink_pos = pool.topology().position(sink);
        let sd = pool.topology().position(splitter).distance(sink_pos);
        for cell in pool.layout().pool(0).cells() {
            let node = pool.index_node_of(cell).unwrap();
            assert!(
                pool.topology().position(node).distance(sink_pos) >= sd - 1e-9,
                "cell {cell} index node {node} closer than splitter"
            );
        }
    }

    #[test]
    fn unaggregated_replies_cost_more() {
        let mut agg = build_system(300, 9, PoolConfig::paper());
        let mut raw = build_system(300, 9, PoolConfig::paper().without_reply_aggregation());
        for i in 0..20 {
            let e = ev(&[0.72, 0.3 + 0.001 * i as f64, 0.1]);
            agg.insert_from(NodeId(i), e.clone()).unwrap();
            raw.insert_from(NodeId(i), e).unwrap();
        }
        let q = RangeQuery::exact(vec![(0.7, 0.75), (0.2, 0.4), (0.0, 0.2)]).unwrap();
        let a = agg.query_from(NodeId(250), &q).unwrap();
        let r = raw.query_from(NodeId(250), &q).unwrap();
        assert_eq!(a.events.len(), 20);
        assert_eq!(r.events.len(), 20);
        assert!(
            r.cost.reply_messages > a.cost.reply_messages,
            "unaggregated {} vs aggregated {}",
            r.cost.reply_messages,
            a.cost.reply_messages
        );
    }

    #[test]
    fn aggregates_compute_correctly() {
        let mut pool = build_system(300, 10, PoolConfig::paper());
        pool.insert_from(NodeId(0), ev(&[0.62, 0.3, 0.1])).unwrap();
        pool.insert_from(NodeId(1), ev(&[0.64, 0.35, 0.2])).unwrap();
        pool.insert_from(NodeId(2), ev(&[0.9, 0.1, 0.05])).unwrap();
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.0, 0.5), (0.0, 0.5)]).unwrap();
        let count = pool.aggregate_from(NodeId(9), &q, AggregateOp::Count).unwrap();
        assert_eq!(count.value, Some(2.0));
        // On a loss-free radio the aggregate is authoritative.
        assert!(count.completeness.is_complete());
        assert!(count.cost.total() > 0);
        let sum = pool.aggregate_from(NodeId(9), &q, AggregateOp::Sum(0)).unwrap();
        assert!((sum.value.unwrap() - 1.26).abs() < 1e-9);
        let avg = pool.aggregate_from(NodeId(9), &q, AggregateOp::Avg(1)).unwrap();
        assert!((avg.value.unwrap() - 0.325).abs() < 1e-9);
        let min = pool.aggregate_from(NodeId(9), &q, AggregateOp::Min(2)).unwrap();
        assert_eq!(min.value, Some(0.1));
        let max = pool.aggregate_from(NodeId(9), &q, AggregateOp::Max(2)).unwrap();
        assert_eq!(max.value, Some(0.2));
        // Aggregates over an empty result set.
        let empty = RangeQuery::exact(vec![(0.0, 0.01), (0.0, 0.01), (0.99, 1.0)]).unwrap();
        let none = pool.aggregate_from(NodeId(9), &empty, AggregateOp::Sum(0)).unwrap();
        assert_eq!(none.value, None);
        let zero = pool.aggregate_from(NodeId(9), &empty, AggregateOp::Count).unwrap();
        assert_eq!(zero.value, Some(0.0));
        assert!(zero.completeness.is_complete());
    }

    #[test]
    fn query_elapsed_is_the_critical_path_not_the_leg_sum() {
        let mut pool = build_system(300, 2, PoolConfig::paper());
        for i in 0..50 {
            pool.insert_from(NodeId(i * 5), ev(&[0.02 * i as f64, 0.5, 0.5])).unwrap();
        }
        let q = RangeQuery::exact(vec![(0.0, 1.0), (0.4, 0.6), (0.4, 0.6)]).unwrap();
        pool.tracer_mut().clear();
        let before = pool.transport().clock().now();
        let result = pool.query_from(NodeId(123), &q).unwrap();
        let after = pool.transport().clock().now();
        let cost = result.cost;
        assert!(cost.elapsed > 0.0, "a routed query takes virtual time");
        assert!((after - before - cost.elapsed).abs() < 1e-12, "the clock advances by elapsed");
        // Pools and cells overlap, so the end-to-end time is at most the
        // serial per-leg sum — and on this fan-out workload strictly less.
        let serial = cost.forward_latency + cost.reply_latency;
        assert!(
            cost.elapsed < serial,
            "elapsed {} must undercut the serial leg sum {}",
            cost.elapsed,
            serial
        );
        // Every span the query recorded fits inside the operation bracket.
        for span in pool.tracer().spans() {
            assert!(span.start >= before - 1e-12 && span.end <= after + 1e-12);
        }
    }

    #[test]
    fn min_max_aggregates_use_a_total_order() {
        // Regression: Min/Max previously compared with
        // partial_cmp().unwrap(), which panics outright on NaN and treats
        // -0.0 and +0.0 as equal. total_cmp is the IEEE total order,
        // under which -0.0 < +0.0 — observable through the sign bit.
        let zeros = [ev(&[0.0]), ev(&[-0.0])];
        let min = AggregateOp::Min(0).apply(&zeros).unwrap();
        assert!(min == 0.0 && min.is_sign_negative(), "-0.0 is the total-order minimum");
        let max = AggregateOp::Max(0).apply(&zeros).unwrap();
        assert!(max == 0.0 && max.is_sign_positive(), "+0.0 is the total-order maximum");
        // The ordinary path is unchanged.
        let clean = [ev(&[0.3]), ev(&[0.7])];
        assert_eq!(AggregateOp::Min(0).apply(&clean), Some(0.3));
        assert_eq!(AggregateOp::Max(0).apply(&clean), Some(0.7));
    }
}
