//! In-network event storage: which node holds which events of which cell.
//!
//! Each pool cell's events live at its index node by default; when workload
//! sharing (§4.2) is active, overflow events live at delegate nodes chained
//! off the index node. The store tracks the holder of every event so query
//! processing can charge the extra delegate hops and hotspot experiments can
//! measure per-node storage load.

use crate::event::Event;
use crate::grid::CellCoord;
use pool_netsim::node::NodeId;
use std::collections::HashMap;

/// A stored event together with the node that physically holds it.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEvent {
    /// The event payload.
    pub event: Event,
    /// The sensor node holding this copy.
    pub holder: NodeId,
}

/// Event storage across all pool cells.
#[derive(Debug, Clone, Default)]
pub struct CellStore {
    by_cell: HashMap<CellCoord, Vec<StoredEvent>>,
    count_by_node: HashMap<NodeId, usize>,
    total: usize,
}

impl CellStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CellStore::default()
    }

    /// Records `event` as stored in `cell` at node `holder`.
    pub fn insert(&mut self, cell: CellCoord, event: Event, holder: NodeId) {
        self.by_cell.entry(cell).or_default().push(StoredEvent { event, holder });
        *self.count_by_node.entry(holder).or_insert(0) += 1;
        self.total += 1;
    }

    /// The events stored in `cell` (empty slice if none).
    pub fn events_in(&self, cell: CellCoord) -> &[StoredEvent] {
        self.by_cell.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of events held by `node`.
    pub fn count_at(&self, node: NodeId) -> usize {
        self.count_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Total number of stored events.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The largest per-node storage load (hotspot indicator).
    pub fn max_node_load(&self) -> usize {
        self.count_by_node.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct nodes holding at least one event.
    pub fn loaded_nodes(&self) -> usize {
        self.count_by_node.values().filter(|&&c| c > 0).count()
    }

    /// Iterates over all `(cell, stored events)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&CellCoord, &[StoredEvent])> {
        self.by_cell.iter().map(|(c, v)| (c, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: &[f64]) -> Event {
        Event::new(v.to_vec()).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut store = CellStore::new();
        let cell = CellCoord::new(3, 4);
        store.insert(cell, ev(&[0.4, 0.3, 0.1]), NodeId(7));
        assert_eq!(store.len(), 1);
        assert_eq!(store.events_in(cell).len(), 1);
        assert_eq!(store.events_in(cell)[0].holder, NodeId(7));
        assert!(store.events_in(CellCoord::new(0, 0)).is_empty());
    }

    #[test]
    fn per_node_counts() {
        let mut store = CellStore::new();
        store.insert(CellCoord::new(0, 0), ev(&[0.1, 0.2]), NodeId(1));
        store.insert(CellCoord::new(0, 1), ev(&[0.2, 0.1]), NodeId(1));
        store.insert(CellCoord::new(0, 2), ev(&[0.3, 0.1]), NodeId(2));
        assert_eq!(store.count_at(NodeId(1)), 2);
        assert_eq!(store.count_at(NodeId(2)), 1);
        assert_eq!(store.count_at(NodeId(3)), 0);
        assert_eq!(store.max_node_load(), 2);
        assert_eq!(store.loaded_nodes(), 2);
    }

    #[test]
    fn multiple_events_per_cell_keep_order() {
        let mut store = CellStore::new();
        let cell = CellCoord::new(5, 5);
        store.insert(cell, ev(&[0.5, 0.1]), NodeId(1));
        store.insert(cell, ev(&[0.6, 0.2]), NodeId(2));
        let events = store.events_in(cell);
        assert_eq!(events[0].event.values(), &[0.5, 0.1]);
        assert_eq!(events[1].event.values(), &[0.6, 0.2]);
    }

    #[test]
    fn iter_visits_everything() {
        let mut store = CellStore::new();
        store.insert(CellCoord::new(0, 0), ev(&[0.1, 0.2]), NodeId(1));
        store.insert(CellCoord::new(1, 1), ev(&[0.2, 0.1]), NodeId(2));
        let total: usize = store.iter().map(|(_, evs)| evs.len()).sum();
        assert_eq!(total, 2);
    }
}
