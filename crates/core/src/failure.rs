//! Node failure injection and recovery.
//!
//! Sensor nodes die — batteries drain, hardware fails. This module adds
//! fault tolerance on top of the paper's design:
//!
//! * **Re-election**: when a cell's index node dies, the live node nearest
//!   the cell center takes over (the same rule that elected the original,
//!   §2, applied to the surviving population).
//! * **Replication** ([`crate::config::PoolConfig::with_replication`]):
//!   each insertion leaves one backup copy at a neighbor of the index
//!   node (+1 message). After a failure, the new index node recovers the
//!   dead node's events from the surviving backups.
//! * **Repair accounting**: every migration/recovery hop is charged to the
//!   traffic ledger, so experiments can price fault tolerance.
//!
//! Without replication, events held by dead nodes are lost — the paper's
//! (implicit) baseline behaviour.

use crate::event::Event;
use crate::grid::CellCoord;
use crate::system::PoolSystem;
use crate::PoolError;
use pool_netsim::node::NodeId;
use pool_transport::metrics::LedgerSnapshot;
use pool_transport::trace::TraceOp;
use pool_transport::TrafficLayer;
use std::collections::HashMap;

/// Outcome of a failure-injection step (or of a run of churn epochs, when
/// produced by [`crate::dynamics::ChurnScenario`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FailureReport {
    /// Nodes newly failed in this step.
    pub failed_nodes: usize,
    /// Pool cells whose index node changed.
    pub cells_reassigned: usize,
    /// Events that survived in place (holder still alive, cell untouched).
    pub events_retained: usize,
    /// Events migrated from a surviving holder to a new index node.
    pub events_migrated: usize,
    /// Events recovered from backup copies.
    pub events_recovered: usize,
    /// Events permanently lost.
    pub events_lost: usize,
    /// Radio messages spent on repair (migration + recovery + re-backup).
    pub repair_messages: u64,
    /// Whether the surviving network is split into several components.
    /// Repair proceeds anyway (degraded mode); queries issued afterwards
    /// report the cells they cannot reach via
    /// [`crate::forward::Completeness`].
    pub partitioned: bool,
    /// Survivors outside the largest connected component (0 when not
    /// partitioned).
    pub nodes_unreachable: usize,
    /// Pool cells whose re-elected index node sits outside the largest
    /// component.
    pub cells_unreachable: usize,
    /// Events whose repair route (migration or recovery) could not be
    /// delivered; they are dropped from the store rather than restored,
    /// keeping stored state consistent with what queries can see.
    pub events_unreachable: usize,
    /// Churn epochs this report spans (0 for a one-shot `fail_nodes`).
    pub epochs: usize,
    /// Failures caused by a battery draining to zero rather than a
    /// scripted kill (only churn scenarios with an energy model set this).
    pub energy_deaths: usize,
    /// Repairs still queued when the report was taken — work the per-epoch
    /// message budget pushed into later epochs (0 for one-shot repair,
    /// which is unbudgeted).
    pub deferred_repairs: u64,
}

impl FailureReport {
    /// Combines two reports (e.g. successive failure rounds): counters add
    /// up, the partition flag is sticky.
    pub fn merge(&self, other: &FailureReport) -> FailureReport {
        FailureReport {
            failed_nodes: self.failed_nodes + other.failed_nodes,
            cells_reassigned: self.cells_reassigned + other.cells_reassigned,
            events_retained: self.events_retained + other.events_retained,
            events_migrated: self.events_migrated + other.events_migrated,
            events_recovered: self.events_recovered + other.events_recovered,
            events_lost: self.events_lost + other.events_lost,
            repair_messages: self.repair_messages + other.repair_messages,
            partitioned: self.partitioned || other.partitioned,
            nodes_unreachable: self.nodes_unreachable + other.nodes_unreachable,
            cells_unreachable: self.cells_unreachable + other.cells_unreachable,
            events_unreachable: self.events_unreachable + other.events_unreachable,
            epochs: self.epochs + other.epochs,
            energy_deaths: self.energy_deaths + other.energy_deaths,
            deferred_repairs: self.deferred_repairs + other.deferred_repairs,
        }
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} node(s) failed: {} cells reassigned; events {} retained, \
             {} migrated, {} recovered, {} lost; {} repair messages",
            self.failed_nodes,
            self.cells_reassigned,
            self.events_retained,
            self.events_migrated,
            self.events_recovered,
            self.events_lost,
            self.repair_messages,
        )?;
        if self.epochs > 0 {
            write!(f, " over {} epoch(s)", self.epochs)?;
        }
        if self.energy_deaths > 0 {
            write!(f, "; {} death(s) from battery depletion", self.energy_deaths)?;
        }
        if self.deferred_repairs > 0 {
            write!(f, "; {} repair(s) still deferred", self.deferred_repairs)?;
        }
        if self.partitioned {
            write!(
                f,
                "; network partitioned ({} nodes, {} cells, {} events unreachable)",
                self.nodes_unreachable, self.cells_unreachable, self.events_unreachable,
            )?;
        }
        Ok(())
    }
}

/// A backup copy of an event, held by a neighbor of the index node that
/// stored the primary.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BackupCopy {
    pub(crate) event: Event,
    pub(crate) holder: NodeId,
}

impl PoolSystem {
    /// Fails `dead` nodes and repairs the system: re-elects index nodes,
    /// rebuilds the routing substrate over the survivors, migrates or
    /// recovers affected events, and drops continuous queries whose sinks
    /// died.
    ///
    /// A failure that splits the surviving network no longer aborts:
    /// repair proceeds in degraded mode, the report's
    /// [`FailureReport::partitioned`] flag is set, and per-partition
    /// casualties are tallied (`nodes_unreachable`, `cells_unreachable`,
    /// `events_unreachable`). Events whose repair route cannot be
    /// delivered are dropped rather than restored, so the store never
    /// claims events a query could not produce.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownNode`] if any id was never deployed (no repair
    /// is attempted and no counter moves); [`PoolError::Routing`] only for
    /// pathological (non-delivery) routing failures.
    ///
    /// Failing an *already-dead* node is an idempotent no-op: duplicates
    /// and corpses are filtered out before any counting, so double-kills
    /// can never inflate `failed_nodes` or `events_lost`. A victim set
    /// with nobody left to kill returns an all-zero report without
    /// touching the network.
    pub fn fail_nodes(&mut self, dead: &[NodeId]) -> Result<FailureReport, PoolError> {
        let nodes = self.topology().len();
        if let Some(&bad) = dead.iter().find(|d| d.index() >= nodes) {
            return Err(PoolError::UnknownNode { node: bad, nodes });
        }
        let mut victims: Vec<NodeId> =
            dead.iter().copied().filter(|&d| self.topology().is_alive(d)).collect();
        victims.sort_unstable();
        victims.dedup();
        if victims.is_empty() {
            return Ok(FailureReport::default());
        }
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut report = FailureReport { failed_nodes: victims.len(), ..FailureReport::default() };

        // 1. Take the nodes out of the radio network and rebuild routing.
        //    Transport::rebuild re-planarizes, bumps the topology
        //    generation, and invalidates any memoized routes. A partition
        //    is recorded, not fatal: each surviving component keeps
        //    operating on its own slice of the field.
        let new_topology = self.topology().without_nodes(&victims);
        report.partitioned = !new_topology.is_connected();
        if report.partitioned {
            report.nodes_unreachable =
                new_topology.len() - new_topology.largest_component_members().len();
        }
        self.replace_network(new_topology);

        // 2. Re-elect index nodes for every pool cell.
        let mut new_index: HashMap<CellCoord, NodeId> = HashMap::new();
        let mut changed_cells: Vec<CellCoord> = Vec::new();
        for pool in self.layout().pools().to_vec() {
            for cell in pool.cells() {
                let elected = self.topology().nearest_node(self.grid().center(cell));
                if self.index_node_of(cell) != Some(elected) {
                    changed_cells.push(cell);
                }
                new_index.insert(cell, elected);
            }
        }
        report.cells_reassigned = changed_cells.len();
        self.replace_index_nodes(new_index);
        if report.partitioned {
            let main: std::collections::HashSet<NodeId> =
                self.topology().largest_component_members().into_iter().collect();
            report.cells_unreachable = self
                .layout()
                .pools()
                .to_vec()
                .iter()
                .flat_map(|p| p.cells())
                .filter(|&c| self.index_node_of(c).is_none_or(|n| !main.contains(&n)))
                .count();
        }

        // 3. Walk the store: keep, migrate, recover, or lose each event.
        let old_store = self.take_store();
        let mut old_backups = self.take_backups();
        self.clear_delegates();
        for (cell, stored) in old_store.iter() {
            let cell = *cell;
            let index_node = self.index_node_of(cell).expect("pool cells keep index nodes");
            for s in stored {
                if self.topology().is_alive(s.holder) {
                    if s.holder == index_node {
                        report.events_retained += 1;
                        self.restore_event(cell, s.event.clone(), s.holder);
                    } else {
                        // The old holder survives but is no longer this
                        // cell's index node (it was a delegate or a
                        // deposed index node): migrate the copy. An
                        // undeliverable migration (partition or exhausted
                        // ARQ) drops the event instead of restoring it.
                        match self.route_and_record(
                            TraceOp::Repair,
                            s.holder,
                            index_node,
                            TrafficLayer::Repair,
                        ) {
                            Ok(outcome) => {
                                report.events_migrated += 1;
                                report.repair_messages += outcome.transmissions;
                                self.restore_event(cell, s.event.clone(), index_node);
                            }
                            Err(PoolError::Undeliverable { transmissions, .. }) => {
                                report.repair_messages += transmissions;
                                report.events_unreachable += 1;
                            }
                            Err(_) => report.events_unreachable += 1,
                        }
                    }
                    continue;
                }
                // Holder died: look for a surviving backup copy.
                let recovered = take_backup(&mut old_backups, cell, &s.event, self.topology());
                match recovered {
                    Some(backup_holder) => {
                        match self.route_and_record(
                            TraceOp::Repair,
                            backup_holder,
                            index_node,
                            TrafficLayer::Repair,
                        ) {
                            Ok(outcome) => {
                                report.events_recovered += 1;
                                report.repair_messages += outcome.transmissions;
                                self.restore_event(cell, s.event.clone(), index_node);
                            }
                            Err(PoolError::Undeliverable { transmissions, .. }) => {
                                report.repair_messages += transmissions;
                                report.events_unreachable += 1;
                            }
                            Err(_) => report.events_unreachable += 1,
                        }
                    }
                    None => report.events_lost += 1,
                }
            }
        }

        // 4. Re-create backups for everything now stored, if replication
        //    is on (the old backup set is discarded wholesale — simpler
        //    and safer than patching it copy by copy).
        if self.config().replicate {
            report.repair_messages += self.rebuild_backups()?;
        }

        // 5. Continuous queries of dead sinks can never be delivered.
        self.drop_monitors_with_dead_sinks();
        ledger_before.debug_assert_sum(
            self.transport.ledger(),
            "fail_nodes",
            report.repair_messages,
            &[TrafficLayer::Repair, TrafficLayer::Replication, TrafficLayer::Retransmit],
        );
        Ok(report)
    }
}

/// Removes and returns a surviving backup holder for `event` in `cell`.
pub(crate) fn take_backup(
    backups: &mut HashMap<CellCoord, Vec<BackupCopy>>,
    cell: CellCoord,
    event: &Event,
    topology: &pool_netsim::topology::Topology,
) -> Option<NodeId> {
    let copies = backups.get_mut(&cell)?;
    let idx = copies.iter().position(|c| &c.event == event && topology.is_alive(c.holder))?;
    Some(copies.swap_remove(idx).holder)
}

/// Helper: rebuilt-store utilities live on [`PoolSystem`] but the heavy
/// lifting above stays in this module.
impl PoolSystem {
    pub(crate) fn restore_event(&mut self, cell: CellCoord, event: Event, holder: NodeId) {
        self.store_mut().insert(cell, event, holder);
    }
}

#[allow(unused_imports)]
pub(crate) use self::tests_support::*;

mod tests_support {
    // (no shared fixtures yet; kept for future failure-model variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::query::RangeQuery;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::topology::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_system(seed: u64, config: PoolConfig) -> PoolSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(400, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), config).unwrap();
            }
            s += 1000;
        }
    }

    fn all_query() -> RangeQuery {
        RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    fn load(pool: &mut PoolSystem, count: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..count {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            pool.insert_from(NodeId(rng.gen_range(0..400)), e).unwrap();
        }
    }

    /// The index nodes currently holding events (failure targets).
    fn loaded_nodes(pool: &PoolSystem) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> =
            (0..400u32).map(NodeId).filter(|&n| pool.store().count_at(n) > 0).collect();
        nodes.sort_unstable();
        nodes
    }

    #[test]
    fn failure_without_replication_loses_only_dead_holders_events() {
        let mut pool = build_system(1, PoolConfig::paper());
        load(&mut pool, 300, 10);
        let before = pool.store().len();
        let victims: Vec<NodeId> = loaded_nodes(&pool).into_iter().take(3).collect();
        let at_risk: usize = victims.iter().map(|&v| pool.store().count_at(v)).sum();
        let report = pool.fail_nodes(&victims).unwrap();
        assert_eq!(report.failed_nodes, 3);
        assert_eq!(report.events_lost, at_risk);
        assert_eq!(pool.store().len(), before - at_risk);
        // The survivors are still fully queryable.
        let got = pool.query_from(NodeId(399), &all_query()).unwrap();
        assert_eq!(got.events.len(), before - at_risk);
    }

    #[test]
    fn replication_recovers_everything() {
        let mut pool = build_system(2, PoolConfig::paper().with_replication());
        load(&mut pool, 300, 12);
        let before = pool.store().len();
        let victims: Vec<NodeId> = loaded_nodes(&pool).into_iter().take(4).collect();
        let report = pool.fail_nodes(&victims).unwrap();
        assert_eq!(report.events_lost, 0, "replication must prevent loss: {report:?}");
        assert!(report.events_recovered > 0, "some events were on dead nodes");
        assert!(report.repair_messages > 0);
        assert_eq!(pool.store().len(), before);
        let got = pool.query_from(NodeId(399), &all_query()).unwrap();
        assert_eq!(got.events.len(), before);
    }

    #[test]
    fn index_nodes_are_reelected_to_nearest_survivor() {
        let mut pool = build_system(3, PoolConfig::paper());
        load(&mut pool, 50, 12);
        let victims: Vec<NodeId> = loaded_nodes(&pool).into_iter().take(2).collect();
        pool.fail_nodes(&victims).unwrap();
        for pool_spec in pool.layout().pools().to_vec() {
            for cell in pool_spec.cells() {
                let index = pool.index_node_of(cell).unwrap();
                assert!(pool.topology().is_alive(index));
                assert_eq!(index, pool.topology().nearest_node(pool.grid().center(cell)));
            }
        }
    }

    #[test]
    fn inserts_and_queries_work_after_cascading_failures() {
        let mut pool = build_system(4, PoolConfig::paper().with_replication());
        load(&mut pool, 100, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let mut combined = FailureReport::default();
        for round in 0..3 {
            let victims: Vec<NodeId> =
                loaded_nodes(&pool).into_iter().filter(|_| rng.gen_bool(0.3)).take(2).collect();
            if victims.is_empty() {
                continue;
            }
            let report = pool.fail_nodes(&victims).unwrap();
            combined = combined.merge(&report);
            assert_eq!(report.events_lost, 0, "round {round}: {report:?}");
            // New insertions land on live index nodes.
            let mut src = NodeId(rng.gen_range(0..400));
            while !pool.topology().is_alive(src) {
                src = NodeId(rng.gen_range(0..400));
            }
            let receipt = pool
                .insert_from(src, Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap())
                .unwrap();
            assert!(pool.topology().is_alive(receipt.holder));
        }
        let got = pool.query_from(loaded_nodes(&pool)[0], &all_query()).unwrap();
        assert_eq!(got.events.len(), pool.store().len());
        // The merged report sums the rounds.
        assert!(combined.failed_nodes >= 2);
        assert_eq!(combined.events_lost, 0);
        assert!(!combined.partitioned);
    }

    #[test]
    fn merged_reports_sum_counters_and_keep_the_partition_flag() {
        let a = FailureReport {
            failed_nodes: 2,
            events_migrated: 3,
            repair_messages: 10,
            partitioned: true,
            nodes_unreachable: 5,
            ..FailureReport::default()
        };
        let b = FailureReport {
            failed_nodes: 1,
            events_recovered: 4,
            repair_messages: 7,
            ..FailureReport::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.failed_nodes, 3);
        assert_eq!(m.events_migrated, 3);
        assert_eq!(m.events_recovered, 4);
        assert_eq!(m.repair_messages, 17);
        assert!(m.partitioned, "partition flag must be sticky");
        assert_eq!(m.nodes_unreachable, 5);
        // merge is symmetric.
        assert_eq!(m, b.merge(&a));
    }

    #[test]
    fn report_display_is_informative() {
        let healthy = FailureReport { failed_nodes: 2, events_migrated: 3, ..Default::default() };
        let text = healthy.to_string();
        assert!(text.contains("2 node(s) failed"), "{text}");
        assert!(!text.contains("partitioned"), "{text}");
        assert!(!text.contains("epoch"), "{text}");
        assert!(!text.contains("deferred"), "{text}");
        let split = FailureReport { partitioned: true, nodes_unreachable: 7, ..Default::default() };
        let text = split.to_string();
        assert!(text.contains("partitioned"), "{text}");
        assert!(text.contains("7 nodes"), "{text}");
        let churned = FailureReport {
            epochs: 4,
            energy_deaths: 2,
            deferred_repairs: 9,
            ..Default::default()
        };
        let text = churned.to_string();
        assert!(text.contains("4 epoch(s)"), "{text}");
        assert!(text.contains("2 death(s) from battery depletion"), "{text}");
        assert!(text.contains("9 repair(s) still deferred"), "{text}");
    }

    #[test]
    fn merge_sums_the_churn_fields() {
        let a = FailureReport {
            epochs: 2,
            energy_deaths: 1,
            deferred_repairs: 5,
            ..Default::default()
        };
        let b = FailureReport { epochs: 3, deferred_repairs: 2, ..Default::default() };
        let m = a.merge(&b);
        assert_eq!(m.epochs, 5);
        assert_eq!(m.energy_deaths, 1);
        assert_eq!(m.deferred_repairs, 7);
    }

    /// Satellite regression: double-killing is idempotent, and unknown ids
    /// are a typed error. Neither can inflate the casualty counters.
    #[test]
    fn double_kill_is_idempotent_and_unknown_nodes_are_typed_errors() {
        let mut pool = build_system(8, PoolConfig::paper());
        load(&mut pool, 200, 18);
        let victim = loaded_nodes(&pool)[0];
        let first = pool.fail_nodes(&[victim]).unwrap();
        assert_eq!(first.failed_nodes, 1);
        assert!(first.events_lost > 0, "the victim held events");
        let stored = pool.store().len();
        let alive = pool.topology().alive_count();

        // Killing the same node again must not double-count anything or
        // touch the network.
        let second = pool.fail_nodes(&[victim]).unwrap();
        assert_eq!(second, FailureReport::default(), "double-kill must be a no-op");
        assert_eq!(pool.store().len(), stored);
        assert_eq!(pool.topology().alive_count(), alive);

        // A duplicated victim in one call counts once.
        let next = loaded_nodes(&pool).into_iter().find(|&n| n != victim).unwrap();
        let dup = pool.fail_nodes(&[next, next, victim]).unwrap();
        assert_eq!(dup.failed_nodes, 1, "duplicates and corpses are filtered: {dup:?}");

        // An id that was never deployed is a typed error, not a panic, and
        // nothing happens.
        let stored = pool.store().len();
        let err = pool.fail_nodes(&[NodeId(400), next]).unwrap_err();
        assert!(
            matches!(err, PoolError::UnknownNode { node: NodeId(400), nodes: 400 }),
            "got {err:?}"
        );
        assert_eq!(pool.store().len(), stored);
        assert!(err.to_string().contains("unknown node"), "{err}");
    }

    #[test]
    fn monitors_of_dead_sinks_are_dropped() {
        let mut pool = build_system(5, PoolConfig::paper());
        let q = RangeQuery::exact(vec![(0.4, 0.6), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let sink = NodeId(17);
        pool.install_monitor(sink, q.clone()).unwrap();
        let other = pool.install_monitor(NodeId(30), q).unwrap().id;
        pool.fail_nodes(&[sink]).unwrap();
        assert_eq!(pool.monitors().len(), 1);
        assert!(pool.monitors().get(other).is_some());
    }

    #[test]
    fn disconnecting_failure_degrades_instead_of_aborting() {
        // Kill a vertical stripe through the middle of the field so the
        // survivors split into (at least) an east and a west component.
        let mut pool = build_system(6, PoolConfig::paper());
        load(&mut pool, 120, 16);
        let field = pool.field();
        let mid_x = field.center().x;
        let victims: Vec<NodeId> = pool
            .topology()
            .nodes()
            .iter()
            .filter(|n| (n.position.x - mid_x).abs() < 45.0)
            .map(|n| n.id)
            .collect();
        let report = pool.fail_nodes(&victims).unwrap();
        assert!(report.partitioned, "stripe failure must partition: {report:?}");
        assert!(report.nodes_unreachable > 0, "{report:?}");
        assert!(report.cells_unreachable > 0, "{report:?}");
        // Queries from the largest component still answer, reporting the
        // cells they could not reach instead of erroring.
        let main = pool.topology().largest_component_members();
        let sink = main[0];
        let got = pool.query_from(sink, &all_query()).unwrap();
        assert!(
            !got.completeness.is_complete(),
            "a partition must surface as missing cells: {:?}",
            got.completeness
        );
        assert_eq!(
            got.completeness.cells_reached + got.completeness.unreached_cells.len(),
            got.completeness.cells_relevant
        );
        assert!(got.completeness.ratio() < 1.0);
    }

    #[test]
    fn replication_charges_one_extra_message_per_insert() {
        let mut plain = build_system(7, PoolConfig::paper());
        let mut replicated = build_system(7, PoolConfig::paper().with_replication());
        let e = Event::new(vec![0.3, 0.7, 0.2]).unwrap();
        let a = plain.insert_from(NodeId(5), e.clone()).unwrap();
        let b = replicated.insert_from(NodeId(5), e).unwrap();
        assert_eq!(b.messages, a.messages + 1);
    }
}
