//! # pool-core — the Pool multi-dimensional range-query storage scheme
//!
//! A full reproduction of *"Supporting Multi-Dimensional Range Query for
//! Sensor Networks"* (Chung, Su & Lee, ICDCS 2007): an efficient, scalable
//! data-centric storage scheme whose index nodes are grouped into **pools**,
//! mapping `k`-dimensional events onto a two-dimensional sensor field while
//! preserving proximity.
//!
//! ## Layered API
//!
//! *Pure math (no network):*
//! * [`event`] / [`query`] — events, the four query types (§2), rewriting.
//! * [`grid`] / [`layout`] — the α-cell grid, pools, Equation 1 ranges.
//! * [`insert`] — Theorem 3.1 placement + §4.1 tie handling.
//! * [`resolve`] — Theorem 3.2 / Algorithm 2 relevant-cell computation.
//! * [`interval`] — the half-open/closed interval arithmetic beneath it.
//!
//! *Deployed system (over `pool-netsim` + `pool-gpsr`):*
//! * [`system`] — system lifecycle, insertion, workload sharing (§4.2),
//!   and per-message cost accounting over the pluggable
//!   [`pool_transport::Transport`] substrate.
//! * [`forward`] — splitter-based query forwarding (§3.2.3), aggregates,
//!   and monitor dissemination over the splitter tree.
//! * [`explain`] — inspectable query plans (derived ranges, relevant
//!   cells, splitters) without touching the network.
//! * [`monitor`] — continuous (standing) queries with push notifications
//!   (§6 extension).
//! * [`nn`] — k-nearest-neighbor queries in event space (§6 extension).
//! * [`failure`] — node-failure injection, index re-election, replication
//!   and recovery.
//! * [`dynamics`] — continuous churn: epoch-stepped joins, deaths (scripted
//!   or energy-driven), waypoint mobility, and incremental budgeted repair.
//! * [`audit`] — whole-system invariant checking.
//! * [`dcs`] — the [`dcs::DataCentricStore`] trait unifying Pool with the
//!   DIM baseline.
//! * [`config`] / [`storage`] / [`error`] — supporting types.
//!
//! # Examples
//!
//! Resolving Example 3.2's partial-match query with pure math only:
//!
//! ```
//! use pool_core::grid::{CellCoord, Grid};
//! use pool_core::layout::PoolLayout;
//! use pool_core::query::RangeQuery;
//! use pool_core::resolve::relevant_cells;
//! use pool_netsim::geometry::Rect;
//!
//! # fn main() -> Result<(), pool_core::error::PoolError> {
//! let grid = Grid::over(Rect::square(100.0), 5.0)?;
//! let layout = PoolLayout::with_pivots(
//!     &grid,
//!     5,
//!     vec![CellCoord::new(1, 2), CellCoord::new(2, 10), CellCoord::new(7, 3)],
//! )?;
//! let query = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))])?;
//! let cells = relevant_cells(&layout, &query);
//! assert_eq!(cells.len(), 7); // Figure 5: 1 + 1 + 5 cells
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod batch;
pub mod config;
pub mod dcs;
pub mod dynamics;
pub mod error;
pub mod event;
pub mod explain;
pub mod failure;
pub mod forward;
pub mod grid;
pub mod insert;
pub mod interval;
pub mod layout;
pub mod monitor;
pub mod nn;
pub mod query;
pub mod resolve;
pub mod storage;
pub mod system;

pub use audit::{AuditReport, AuditViolation};
pub use batch::BatchResult;
pub use config::{PoolConfig, SharingPolicy};
pub use dcs::DataCentricStore;
pub use dynamics::{
    ChurnConfig, ChurnPlanner, ChurnScenario, EnergyBudget, EpochPlan, RepairQueue,
};
pub use error::PoolError;
pub use event::Event;
pub use explain::{PlannedCell, PoolPlan, QueryPlan};
pub use failure::FailureReport;
pub use insert::InsertError;
pub use monitor::{Monitor, MonitorId, Notification};
pub use query::{QueryType, RangeQuery};
pub use system::{
    AggregateOp, AggregateResult, Completeness, InsertReceipt, MonitorInstall, PoolSystem,
    QueryCost, QueryResult,
};
