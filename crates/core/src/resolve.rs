//! Query resolving — Theorem 3.2 and Algorithm 2.
//!
//! For each pool `Pᵢ`, the cells that may hold qualifying events of a
//! (rewritten) query `Q = <[L₁,U₁], …, [L_k,U_k]>` are those whose Equation-1
//! ranges intersect the *derived ranges*:
//!
//! ```text
//! R_Hⁱ(Q) = [ MAX(L₁ … L_k), Uᵢ ]
//! R_Vⁱ(Q) = [ MAX({L₁…L_k} \ {Lᵢ}), MIN(Uᵢ, MAX({U₁…U_k} \ {Uᵢ})) ]
//! ```
//!
//! (Example 3.1's prose prints `R_H²(Q) = [0.25, 0.3]` where the theorem
//! yields `[0.25, 0.35]`; the theorem's bound is the sound one — an event
//! like `<0.28, 0.34, 0.22>` is stored under `V₂ = 0.34` — and both produce
//! the same relevant cells in the example. We implement the theorem.)

use crate::grid::CellCoord;
use crate::interval::Interval;
use crate::layout::{PoolLayout, PoolSpec};
use crate::query::RangeQuery;

/// The derived ranges of Theorem 3.2 for one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedRanges {
    /// `R_Hⁱ(Q)`: the possible greatest values of qualifying events in `Pᵢ`.
    pub r_h: Interval,
    /// `R_Vⁱ(Q)`: the possible second-greatest values.
    pub r_v: Interval,
}

impl DerivedRanges {
    /// Whether the pool can be pruned entirely (either range empty —
    /// Algorithm 2's `MAX(L…) > Uᵢ` guard generalized).
    pub fn is_empty(&self) -> bool {
        self.r_h.is_empty() || self.r_v.is_empty()
    }
}

/// Computes Theorem 3.2's derived ranges for pool dimension `i` (0-based)
/// of a *rewritten* query (every dimension has explicit `[L, U]` bounds).
///
/// # Panics
///
/// Panics if `i` is out of range or the query has fewer than 2 dimensions.
pub fn derived_ranges(rewritten: &[(f64, f64)], i: usize) -> DerivedRanges {
    assert!(rewritten.len() >= 2, "derived ranges require at least 2 dimensions");
    assert!(i < rewritten.len(), "pool dimension {i} out of range");
    let max_l = rewritten.iter().map(|&(l, _)| l).fold(f64::NEG_INFINITY, f64::max);
    let (l_i, u_i) = rewritten[i];
    let _ = l_i;
    let max_l_rest = rewritten
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, &(l, _))| l)
        .fold(f64::NEG_INFINITY, f64::max);
    let max_u_rest = rewritten
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, &(_, u))| u)
        .fold(f64::NEG_INFINITY, f64::max);
    DerivedRanges {
        r_h: Interval::closed(max_l, u_i),
        r_v: Interval::closed(max_l_rest, u_i.min(max_u_rest)),
    }
}

/// Algorithm 2: the offsets of every cell of `pool` relevant to the
/// rewritten query, in `(ho, vo)` lexicographic order.
pub fn relevant_offsets(pool: &PoolSpec, rewritten: &[(f64, f64)]) -> Vec<(u32, u32)> {
    let ranges = derived_ranges(rewritten, pool.dim);
    if ranges.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for ho in 0..pool.side {
        if !pool.range_h(ho).intersects(ranges.r_h) {
            continue;
        }
        for vo in 0..pool.side {
            if pool.range_v(ho, vo).intersects(ranges.r_v) {
                out.push((ho, vo));
            }
        }
    }
    out
}

/// Closed-form variant of [`relevant_offsets`]: instead of scanning all
/// `l²` cells (Algorithm 2 as printed), the relevant column interval and
/// each column's relevant row interval are computed arithmetically.
///
/// Produces exactly the same cells as [`relevant_offsets`] (property-tested
/// equivalence) in `O(columns + output)` instead of `O(l²)` — the form a
/// real splitter node would run.
pub fn relevant_offsets_fast(pool: &PoolSpec, rewritten: &[(f64, f64)]) -> Vec<(u32, u32)> {
    let ranges = derived_ranges(rewritten, pool.dim);
    if ranges.is_empty() {
        return Vec::new();
    }
    let l = pool.side as f64;
    let mut out = Vec::new();
    // Columns whose [ho/l, (ho+1)/l) range meets the closed R_H: ho from
    // floor(lo·l) (the column containing the lower bound) through the
    // column containing the upper bound.
    // The window is widened by one column/row on each side to absorb
    // floating-point boundary effects; the exact interval test inside the
    // loop keeps the output identical to the full scan.
    let ho_lo =
        ((ranges.r_h.lo() * l).floor().max(0.0) as u32).saturating_sub(1).min(pool.side - 1);
    let ho_hi = (((ranges.r_h.hi() * l).floor() as u32).saturating_add(1)).min(pool.side - 1);
    for ho in ho_lo..=ho_hi.min(pool.side - 1) {
        if !pool.range_h(ho).intersects(ranges.r_h) {
            continue;
        }
        // Rows of this column whose range meets R_V: row height is
        // (ho+1)/l², so the candidate rows bracket R_V the same way.
        let row_height = (ho as f64 + 1.0) / (l * l);
        let vo_lo = ((ranges.r_v.lo() / row_height).floor().max(0.0) as u32)
            .saturating_sub(1)
            .min(pool.side - 1);
        let vo_hi =
            (((ranges.r_v.hi() / row_height).floor() as u32).saturating_add(1)).min(pool.side - 1);
        for vo in vo_lo..=vo_hi {
            if pool.range_v(ho, vo).intersects(ranges.r_v) {
                out.push((ho, vo));
            }
        }
    }
    out
}

/// Resolves a query against the whole layout: every relevant cell across
/// all pools, as `(pool_dim, cell)` pairs.
///
/// Partial-match queries need no special handling — §3.2.2's observation is
/// that the §2 rewrite composes directly with Theorem 3.2.
///
/// # Panics
///
/// Panics if the query's dimensionality differs from the layout's.
pub fn relevant_cells(layout: &PoolLayout, query: &RangeQuery) -> Vec<(usize, CellCoord)> {
    assert_eq!(
        query.dims(),
        layout.dims(),
        "query dimensionality {} does not match layout {}",
        query.dims(),
        layout.dims()
    );
    let rewritten = query.rewritten();
    let mut out = Vec::new();
    for pool in layout.pools() {
        // The closed-form resolver; proven cell-for-cell identical to the
        // printed Algorithm 2 scan by `fast_resolve_equals_algorithm_2_scan`
        // and the property suite.
        for (ho, vo) in relevant_offsets_fast(pool, &rewritten) {
            out.push((pool.dim, pool.cell_at(ho, vo)));
        }
    }
    out
}

/// Groups resolved `(pool_dim, cell)` pairs by pool, in ascending pool
/// order, preserving each pool's cell resolution order. Shared by query
/// forwarding and monitor dissemination, which both walk the splitter tree
/// one pool at a time.
pub fn group_by_pool(relevant: &[(usize, CellCoord)]) -> Vec<(usize, Vec<CellCoord>)> {
    let mut grouped: Vec<(usize, Vec<CellCoord>)> = Vec::new();
    let mut dims: Vec<usize> = relevant.iter().map(|&(d, _)| d).collect();
    dims.sort_unstable();
    dims.dedup();
    for dim in dims {
        let cells = relevant.iter().filter(|&&(d, _)| d == dim).map(|&(_, c)| c).collect();
        grouped.push((dim, cells));
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use pool_netsim::geometry::Rect;

    fn figure2_layout() -> PoolLayout {
        let grid = Grid::over(Rect::square(100.0), 5.0).unwrap();
        PoolLayout::with_pivots(
            &grid,
            5,
            vec![CellCoord::new(1, 2), CellCoord::new(2, 10), CellCoord::new(7, 3)],
        )
        .unwrap()
    }

    fn q(bounds: &[(f64, f64)]) -> RangeQuery {
        RangeQuery::exact(bounds.to_vec()).unwrap()
    }

    #[test]
    fn example_3_1_derived_ranges() {
        // Q = <[0.2,0.3], [0.25,0.35], [0.21,0.24]>.
        let rewritten = vec![(0.2, 0.3), (0.25, 0.35), (0.21, 0.24)];
        let p1 = derived_ranges(&rewritten, 0);
        assert_eq!(p1.r_h, Interval::closed(0.25, 0.3));
        assert_eq!(p1.r_v, Interval::closed(0.25, 0.3));
        let p2 = derived_ranges(&rewritten, 1);
        assert_eq!(p2.r_h, Interval::closed(0.25, 0.35));
        assert_eq!(p2.r_v, Interval::closed(0.21, 0.3));
        let p3 = derived_ranges(&rewritten, 2);
        assert_eq!(p3.r_h, Interval::closed(0.25, 0.24));
        assert!(p3.is_empty());
    }

    #[test]
    fn example_3_1_figure4_relevant_cells() {
        // Figure 4: C(2,5) in P₁; C(3,12) and C(3,13) in P₂; nothing in P₃.
        let layout = figure2_layout();
        let query = q(&[(0.2, 0.3), (0.25, 0.35), (0.21, 0.24)]);
        let cells = relevant_cells(&layout, &query);
        assert_eq!(
            cells,
            vec![(0, CellCoord::new(2, 5)), (1, CellCoord::new(3, 12)), (1, CellCoord::new(3, 13)),]
        );
    }

    #[test]
    fn example_3_2_figure5_partial_match() {
        // Q = <*, *, [0.8, 0.84]> resolves to C(5,6) in P₁, C(6,14) in P₂,
        // and the full column C(11,3)–C(11,7) in P₃ (Figure 5).
        let layout = figure2_layout();
        let query = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))]).unwrap();
        let cells = relevant_cells(&layout, &query);
        assert_eq!(
            cells,
            vec![
                (0, CellCoord::new(5, 6)),
                (1, CellCoord::new(6, 14)),
                (2, CellCoord::new(11, 3)),
                (2, CellCoord::new(11, 4)),
                (2, CellCoord::new(11, 5)),
                (2, CellCoord::new(11, 6)),
                (2, CellCoord::new(11, 7)),
            ]
        );
    }

    #[test]
    fn example_3_2_derived_ranges() {
        let rewritten = vec![(0.0, 1.0), (0.0, 1.0), (0.8, 0.84)];
        let p1 = derived_ranges(&rewritten, 0);
        assert_eq!(p1.r_h, Interval::closed(0.8, 1.0));
        assert_eq!(p1.r_v, Interval::closed(0.8, 1.0));
        let p3 = derived_ranges(&rewritten, 2);
        assert_eq!(p3.r_h, Interval::closed(0.8, 0.84));
        assert_eq!(p3.r_v, Interval::closed(0.0, 0.84));
    }

    #[test]
    fn full_domain_query_selects_every_cell() {
        let layout = figure2_layout();
        let query = q(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]);
        let cells = relevant_cells(&layout, &query);
        assert_eq!(cells.len(), 3 * 25);
    }

    #[test]
    fn point_query_touches_at_most_one_cell_per_pool() {
        let layout = figure2_layout();
        for probe in [[0.3, 0.2, 0.1], [0.9, 0.8, 0.7], [0.5, 0.5, 0.5]] {
            let query = RangeQuery::point(probe.to_vec()).unwrap();
            let cells = relevant_cells(&layout, &query);
            for dim in 0..3 {
                let in_pool = cells.iter().filter(|(d, _)| *d == dim).count();
                assert!(in_pool <= 1, "probe {probe:?}: {in_pool} cells in pool {dim}");
            }
        }
    }

    #[test]
    fn resolve_finds_storage_cell_of_matching_event() {
        // Soundness on a deterministic sweep: any event matching the query
        // must have its Theorem 3.1 cell in the resolved set.
        use crate::event::Event;
        use crate::insert::candidate_cells;
        let layout = figure2_layout();
        let query = q(&[(0.2, 0.5), (0.1, 0.45), (0.0, 0.9)]);
        let steps = 12usize;
        for a in 0..=steps {
            for b in 0..=steps {
                for c in 0..=steps {
                    let event = Event::new(vec![
                        a as f64 / steps as f64,
                        b as f64 / steps as f64,
                        c as f64 / steps as f64,
                    ])
                    .unwrap();
                    if !query.matches(&event) {
                        continue;
                    }
                    let resolved = relevant_cells(&layout, &query);
                    for placement in candidate_cells(&layout, &event) {
                        assert!(
                            resolved.contains(&(placement.pool_dim, placement.cell)),
                            "event {event} stored at {} in P{} missed by resolve",
                            placement.cell,
                            placement.pool_dim + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_query_prunes_most_cells() {
        // The pruning claim of §3.2: a small range query touches a small
        // fraction of the 75 cells.
        let layout = figure2_layout();
        let query = q(&[(0.2, 0.25), (0.2, 0.25), (0.2, 0.25)]);
        let cells = relevant_cells(&layout, &query);
        assert!(cells.len() <= 9, "expected strong pruning, got {} cells", cells.len());
    }

    #[test]
    fn fast_resolve_equals_algorithm_2_scan() {
        // Deterministic sweep of query shapes and pool sides.
        let grid = Grid::over(Rect::square(200.0), 5.0).unwrap();
        for side in [2u32, 3, 5, 8, 10, 13] {
            let layout = PoolLayout::random(&grid, 3, side, side as u64).unwrap();
            let mut queries = Vec::new();
            for a in 0..6 {
                for b in (a..6).step_by(2) {
                    let lo = a as f64 / 6.0;
                    let hi = b as f64 / 6.0 + 0.15;
                    queries.push(vec![
                        (lo, hi.min(1.0)),
                        ((lo * 0.5), (hi * 0.9).min(1.0)),
                        (0.0, 1.0),
                    ]);
                }
            }
            queries.push(vec![(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
            queries.push(vec![(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]);
            for q in &queries {
                for pool in layout.pools() {
                    assert_eq!(
                        relevant_offsets_fast(pool, q),
                        relevant_offsets(pool, q),
                        "side {side}, pool {}, query {q:?}",
                        pool.dim
                    );
                }
            }
        }
    }

    #[test]
    fn group_by_pool_preserves_resolution_order() {
        let relevant =
            vec![(2, CellCoord::new(1, 1)), (0, CellCoord::new(5, 6)), (2, CellCoord::new(1, 2))];
        let grouped = group_by_pool(&relevant);
        assert_eq!(
            grouped,
            vec![
                (0, vec![CellCoord::new(5, 6)]),
                (2, vec![CellCoord::new(1, 1), CellCoord::new(1, 2)]),
            ]
        );
        assert!(group_by_pool(&[]).is_empty());
    }

    #[test]
    fn empty_intersection_when_max_l_exceeds_u() {
        // Algorithm 2 line 1: MAX(L…) > Uᵢ prunes the pool.
        let layout = figure2_layout();
        let query = q(&[(0.9, 0.95), (0.0, 0.1), (0.0, 0.1)]);
        let cells = relevant_cells(&layout, &query);
        // Pools 2 and 3 cannot host events whose greatest value is ≥ 0.9
        // in dimension 1 — only P₁ is relevant.
        assert!(cells.iter().all(|(dim, _)| *dim == 0), "{cells:?}");
    }
}
