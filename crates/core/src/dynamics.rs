//! Dynamic deployments: continuous churn, mobility, and incremental repair.
//!
//! The [`crate::failure`] module repairs one failure burst completely, in
//! one shot, with an unbounded message budget. Real deployments churn
//! *continuously*: nodes join, batteries die mid-experiment, and mobile
//! nodes relocate. This module advances a deployment through virtual-time
//! **epochs** — each epoch applies a batch of joins, deaths, and waypoint
//! moves, then repairs the index *incrementally* under a bounded per-epoch
//! message budget. Repairs that do not fit the budget are carried over in a
//! [`RepairQueue`] and drained in later epochs; until then the affected
//! events are simply not query-visible, so mid-churn queries stay honest
//! ([`crate::forward::Completeness`] never over-claims).
//!
//! The pieces:
//!
//! * [`ChurnConfig`] — rates (joins/deaths/moves per epoch), mobility
//!   distance, the repair budget, and an optional [`EnergyBudget`] that
//!   makes deaths *energy-driven*: batteries drain from the actual per-node
//!   tx/rx counts of the virtual clock, and a node fails when its ledger
//!   hits zero.
//! * [`ChurnPlanner`] — deterministic (seeded) generator of per-epoch
//!   [`EpochPlan`]s against the current topology. It is system-agnostic so
//!   benchmark drivers can replay the *same* plan stream against Pool, DIM,
//!   and GHT.
//! * [`PoolSystem::apply_epoch`] — applies one plan to a live Pool system:
//!   one transport rebuild for the whole batch, zero-message index
//!   re-election, store triage (retain / migrate / recover / lose), and a
//!   budgeted FIFO drain of the repair queue.
//! * [`ChurnScenario`] — the orchestrator tying planner, energy ledger,
//!   and carry-over queue together across epochs.

use crate::event::Event;
use crate::failure::{take_backup, BackupCopy, FailureReport};
use crate::grid::CellCoord;
use crate::system::PoolSystem;
use crate::PoolError;
use pool_netsim::energy::{EnergyLedger, EnergyModel};
use pool_netsim::geometry::{Point, Rect};
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_transport::metrics::LedgerSnapshot;
use pool_transport::trace::TraceOp;
use pool_transport::TrafficLayer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// Battery provisioning for energy-driven deaths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    /// Initial battery capacity per node, in joules. Joiners start with a
    /// full battery.
    pub capacity: f64,
    /// Radio energy model draining the batteries from tx/rx counts.
    pub model: EnergyModel,
}

impl EnergyBudget {
    /// A battery of `capacity` joules drained by the default radio model.
    pub fn joules(capacity: f64) -> Self {
        EnergyBudget { capacity, model: EnergyModel::default() }
    }
}

/// Parameters of a churn scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Number of epochs a full [`ChurnScenario::run`] advances.
    pub epochs: usize,
    /// New nodes deployed (at uniform random field positions) per epoch.
    pub joins_per_epoch: usize,
    /// Scripted node deaths per epoch (energy deaths come on top).
    pub deaths_per_epoch: usize,
    /// Waypoint moves per epoch.
    pub moves_per_epoch: usize,
    /// Maximum per-axis waypoint displacement, in meters. Destinations are
    /// clamped to the deployment field.
    pub move_distance: f64,
    /// Per-epoch repair message budget. Repairs that do not fit are
    /// deferred to later epochs via the [`RepairQueue`].
    pub repair_budget: u64,
    /// When set, batteries drain from real tx/rx counts and depleted nodes
    /// die at the next epoch boundary.
    pub energy: Option<EnergyBudget>,
    /// Seed for the deterministic churn plan stream.
    pub seed: u64,
}

impl ChurnConfig {
    /// A gentle default scenario: 8 epochs of light churn with a
    /// 200-message repair budget and no energy model.
    pub fn new(seed: u64) -> Self {
        ChurnConfig {
            epochs: 8,
            joins_per_epoch: 2,
            deaths_per_epoch: 2,
            moves_per_epoch: 2,
            move_distance: 60.0,
            repair_budget: 200,
            energy: None,
            seed,
        }
    }

    /// Sets the per-epoch join/death/move counts.
    pub fn with_rates(mut self, joins: usize, deaths: usize, moves: usize) -> Self {
        self.joins_per_epoch = joins;
        self.deaths_per_epoch = deaths;
        self.moves_per_epoch = moves;
        self
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the per-epoch repair message budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.repair_budget = budget;
        self
    }

    /// Enables energy-driven deaths.
    pub fn with_energy(mut self, energy: EnergyBudget) -> Self {
        self.energy = Some(energy);
        self
    }
}

/// One epoch's worth of scripted churn, referencing the topology it was
/// planned against: `deaths` and `moves` name pre-epoch nodes; `joins` are
/// field positions for new nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// Deployment positions for the nodes joining this epoch.
    pub joins: Vec<Point>,
    /// Nodes dying this epoch (scripted and energy-driven).
    pub deaths: Vec<NodeId>,
    /// Waypoint moves: `(node, destination)`.
    pub moves: Vec<(NodeId, Point)>,
}

impl EpochPlan {
    /// A plan that changes nothing (repair-only epoch: the queue still
    /// drains under the budget).
    pub fn empty() -> Self {
        EpochPlan { joins: Vec::new(), deaths: Vec::new(), moves: Vec::new() }
    }
}

/// Deterministic generator of [`EpochPlan`]s.
///
/// The planner is system-agnostic: it only looks at a [`Topology`] and the
/// deployment field, so benchmark drivers can generate one plan stream and
/// replay it against Pool, DIM, and GHT for an apples-to-apples churn
/// comparison.
#[derive(Debug, Clone)]
pub struct ChurnPlanner {
    config: ChurnConfig,
    rng: StdRng,
}

impl ChurnPlanner {
    /// Creates a planner seeded from `config.seed`.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnPlanner { config, rng: StdRng::seed_from_u64(config.seed ^ 0xC4A2_11E5) }
    }

    /// Plans the next epoch against the current `topology`. Victims and
    /// movers are distinct live nodes; at least one node is always left
    /// alive (a deployment with zero nodes cannot host an index).
    pub fn plan(&mut self, topology: &Topology, field: Rect) -> EpochPlan {
        let mut joins = Vec::with_capacity(self.config.joins_per_epoch);
        for _ in 0..self.config.joins_per_epoch {
            joins.push(Point::new(
                self.rng.gen_range(field.min.x..=field.max.x),
                self.rng.gen_range(field.min.y..=field.max.y),
            ));
        }
        // Sample deaths and moves from the live population without
        // replacement, so a node never moves and dies in the same epoch.
        let mut candidates: Vec<NodeId> =
            topology.nodes().iter().map(|n| n.id).filter(|&n| topology.is_alive(n)).collect();
        let mut deaths = Vec::with_capacity(self.config.deaths_per_epoch);
        for _ in 0..self.config.deaths_per_epoch {
            // Joiners do not offset deaths (they are not yet deployed when
            // the reaper comes): keep at least one pre-epoch survivor.
            if candidates.len() <= 1 {
                break;
            }
            let i = self.rng.gen_range(0..candidates.len());
            deaths.push(candidates.swap_remove(i));
        }
        let mut moves = Vec::with_capacity(self.config.moves_per_epoch);
        for _ in 0..self.config.moves_per_epoch {
            if candidates.is_empty() {
                break;
            }
            let i = self.rng.gen_range(0..candidates.len());
            let id = candidates.swap_remove(i);
            let at = topology.position(id);
            let d = self.config.move_distance;
            let dest =
                Point::new(at.x + self.rng.gen_range(-d..=d), at.y + self.rng.gen_range(-d..=d));
            moves.push((id, field.clamp(dest)));
        }
        EpochPlan { joins, deaths, moves }
    }
}

/// What a queued repair does when it finally runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskKind {
    /// Move the primary copy from a surviving (deposed) holder to the
    /// cell's current index node.
    Migrate,
    /// Copy the payload from a surviving backup holder to the cell's
    /// current index node.
    Recover,
    /// Re-create the backup copy of an event whose primary sits at
    /// `source`.
    Backup,
}

#[derive(Debug, Clone, PartialEq)]
struct RepairTask {
    cell: CellCoord,
    event: Event,
    /// Where the payload physically sits right now.
    source: NodeId,
    kind: TaskKind,
}

/// Carry-over queue of repairs deferred by the per-epoch message budget.
///
/// FIFO: the oldest deferred repair drains first. Events parked here are
/// *not* in the query-visible store — a query over their cell honestly
/// misses them until the handoff lands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairQueue {
    tasks: VecDeque<RepairTask>,
}

impl RepairQueue {
    /// Number of repairs still waiting for budget.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no repairs are pending.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl PoolSystem {
    /// Applies one epoch of churn and repairs incrementally under `budget`.
    ///
    /// The epoch proceeds in phases:
    ///
    /// 1. **Mutate the radio network**: joins (dense new ids), waypoint
    ///    moves, then deaths — one [`pool_transport::Transport::rebuild`]
    ///    for the whole batch (generation bump, memo invalidation, ledger
    ///    and clock growth).
    /// 2. **Re-elect** the index node of every pool cell from the new live
    ///    population (§2's nearest-to-center rule; a purely local,
    ///    zero-message election).
    /// 3. **Triage the store**: events whose holder survives as the cell's
    ///    index stay put; everything else becomes queue work — handoffs
    ///    from deposed holders, recoveries from backups, re-backups of
    ///    retained events whose backup died. Events with neither a live
    ///    holder nor a live backup are lost. Carried-over tasks from
    ///    earlier epochs are refreshed against the new topology first (a
    ///    queued source that died is replaced by a surviving backup, or
    ///    the event is lost).
    /// 4. **Drain the queue FIFO** until the next task would exceed
    ///    `budget` radio messages; the remainder waits for the next epoch
    ///    ([`FailureReport::deferred_repairs`]). On a loss-free radio the
    ///    bound is strict; with ARQ the last task may overshoot by its
    ///    retransmissions (the budget check uses the loss-free route
    ///    length). A budget of 0 pauses repair entirely, and a repair
    ///    whose route alone exceeds the budget is abandoned as
    ///    unreachable (it could never fit any epoch).
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownNode`] if the plan names a node that was never
    /// deployed (nothing is applied); [`PoolError::Routing`] only for
    /// pathological routing failures.
    pub fn apply_epoch(
        &mut self,
        plan: &EpochPlan,
        queue: &mut RepairQueue,
        budget: u64,
    ) -> Result<FailureReport, PoolError> {
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut report = FailureReport { epochs: 1, ..FailureReport::default() };

        // Phase 1: joins, then moves, then deaths, on a scratch topology —
        // nothing touches `self` until the plan is validated. One clone for
        // the whole epoch; every event mutates the scratch copy in place
        // (`O(degree)` overlay patches), and one compaction folds the
        // overlay before the swap.
        let mut topo = self.topology().clone();
        for &p in &plan.joins {
            topo.add_node(p);
        }
        let nodes = topo.len();
        if let Some(&(bad, _)) = plan.moves.iter().find(|&&(id, _)| id.index() >= nodes) {
            return Err(PoolError::UnknownNode { node: bad, nodes });
        }
        if let Some(&bad) = plan.deaths.iter().find(|d| d.index() >= nodes) {
            return Err(PoolError::UnknownNode { node: bad, nodes });
        }
        for &(id, dest) in &plan.moves {
            if topo.is_alive(id) {
                topo.move_node(id, dest);
            }
        }
        let mut victims: Vec<NodeId> =
            plan.deaths.iter().copied().filter(|&d| topo.is_alive(d)).collect();
        victims.sort_unstable();
        victims.dedup();
        report.failed_nodes = victims.len();
        topo.fail_nodes(&victims);
        topo.compact();
        report.partitioned = !topo.is_connected();
        if report.partitioned {
            report.nodes_unreachable = topo.alive_count() - topo.largest_component_members().len();
        }
        self.replace_network(topo);

        // Phase 2: re-elect every cell's index node locally. Queries must
        // never find a pool cell without a live index node mid-churn.
        let mut new_index: HashMap<CellCoord, NodeId> = HashMap::new();
        let mut reassigned = 0usize;
        for pool in self.layout().pools().to_vec() {
            for cell in pool.cells() {
                let elected = self.topology().nearest_node(self.grid().center(cell));
                if self.index_node_of(cell) != Some(elected) {
                    reassigned += 1;
                }
                new_index.insert(cell, elected);
            }
        }
        report.cells_reassigned = reassigned;
        self.replace_index_nodes(new_index);
        if report.partitioned {
            let main: HashSet<NodeId> =
                self.topology().largest_component_members().into_iter().collect();
            report.cells_unreachable = self
                .layout()
                .pools()
                .to_vec()
                .iter()
                .flat_map(|p| p.cells())
                .filter(|&c| self.index_node_of(c).is_none_or(|n| !main.contains(&n)))
                .count();
        }

        // Phase 3: triage. `kept` collects the backup copies that remain
        // valid (live holders) for events that still exist somewhere.
        let old_store = self.take_store();
        let mut old_backups = self.take_backups();
        self.clear_delegates();
        let mut kept: HashMap<CellCoord, Vec<BackupCopy>> = HashMap::new();

        // 3a. Refresh the carried-over queue against the new topology.
        let carried: Vec<RepairTask> = queue.tasks.drain(..).collect();
        for mut task in carried {
            if self.topology().is_alive(task.source) {
                // Still sound; keep the event's surviving backup attached.
                if let Some(b) =
                    take_backup(&mut old_backups, task.cell, &task.event, self.topology())
                {
                    kept.entry(task.cell)
                        .or_default()
                        .push(BackupCopy { event: task.event.clone(), holder: b });
                }
                queue.tasks.push_back(task);
            } else {
                match task.kind {
                    // The primary this Backup task was going to copy died;
                    // the store walk below re-triages that event.
                    TaskKind::Backup => {}
                    TaskKind::Migrate | TaskKind::Recover => {
                        // The queued payload source died while waiting.
                        // Fall back to a surviving backup, or lose the
                        // event.
                        match take_backup(&mut old_backups, task.cell, &task.event, self.topology())
                        {
                            Some(b) => {
                                kept.entry(task.cell)
                                    .or_default()
                                    .push(BackupCopy { event: task.event.clone(), holder: b });
                                task.source = b;
                                task.kind = TaskKind::Recover;
                                queue.tasks.push_back(task);
                            }
                            None => report.events_lost += 1,
                        }
                    }
                }
            }
        }

        // 3b. Walk the store: retain, hand off, recover, or lose. Cells
        // are visited in coordinate order — the walk feeds the FIFO repair
        // queue, and the budget cutoff must not depend on HashMap
        // iteration order (the determinism contract covers churn).
        let mut cells: Vec<(&CellCoord, &[crate::storage::StoredEvent])> =
            old_store.iter().collect();
        cells.sort_unstable_by_key(|(c, _)| **c);
        for (cell, stored) in cells {
            let cell = *cell;
            let index_node = self.index_node_of(cell).expect("pool cells keep index nodes");
            for s in stored {
                if self.topology().is_alive(s.holder) {
                    let backup = take_backup(&mut old_backups, cell, &s.event, self.topology());
                    if let Some(b) = backup {
                        kept.entry(cell)
                            .or_default()
                            .push(BackupCopy { event: s.event.clone(), holder: b });
                    }
                    if s.holder == index_node {
                        report.events_retained += 1;
                        self.restore_event(cell, s.event.clone(), s.holder);
                        if backup.is_none() && self.config().replicate {
                            // A Backup task for this event may already sit
                            // in the carried-over queue (budget starvation);
                            // re-discovering it here must not duplicate the
                            // repair, or starved queues grow without bound.
                            let queued = queue.tasks.iter().any(|t| {
                                t.kind == TaskKind::Backup && t.cell == cell && t.event == s.event
                            });
                            if !queued {
                                queue.tasks.push_back(RepairTask {
                                    cell,
                                    event: s.event.clone(),
                                    source: index_node,
                                    kind: TaskKind::Backup,
                                });
                            }
                        }
                    } else {
                        // Deposed holder: the event leaves the
                        // query-visible store until its handoff lands.
                        queue.tasks.push_back(RepairTask {
                            cell,
                            event: s.event.clone(),
                            source: s.holder,
                            kind: TaskKind::Migrate,
                        });
                    }
                    continue;
                }
                // Holder died: recover from a surviving backup, if any.
                match take_backup(&mut old_backups, cell, &s.event, self.topology()) {
                    Some(b) => {
                        // The copy at `b` stays the event's backup after
                        // the recovery lands at the index node.
                        kept.entry(cell)
                            .or_default()
                            .push(BackupCopy { event: s.event.clone(), holder: b });
                        queue.tasks.push_back(RepairTask {
                            cell,
                            event: s.event.clone(),
                            source: b,
                            kind: TaskKind::Recover,
                        });
                    }
                    None => report.events_lost += 1,
                }
            }
        }
        self.set_backups(kept);

        // Phase 4: budgeted FIFO drain.
        self.drain_repairs(queue, budget, &mut report);

        // Dead sinks can never receive another notification.
        self.drop_monitors_with_dead_sinks();
        report.deferred_repairs = queue.len() as u64;
        ledger_before.debug_assert_sum(
            self.transport.ledger(),
            "apply_epoch",
            report.repair_messages,
            &[TrafficLayer::Repair, TrafficLayer::Replication, TrafficLayer::Retransmit],
        );
        Ok(report)
    }

    /// Drains `queue` front-to-back until the next task would exceed
    /// `budget` messages, charging everything to the ledger.
    ///
    /// Two semantics keep the drain well-defined at the extremes: a budget
    /// of 0 *pauses* repair (everything stays queued, nothing is spent),
    /// and a task whose loss-free route alone exceeds the budget can never
    /// run in any epoch, so it is abandoned as unreachable rather than
    /// blocking the queue head forever.
    fn drain_repairs(&mut self, queue: &mut RepairQueue, budget: u64, report: &mut FailureReport) {
        if budget == 0 {
            return;
        }
        let mut spent = 0u64;
        while let Some(task) = queue.tasks.front() {
            let cell = task.cell;
            let source = task.source;
            let kind = task.kind;
            let index_node = self.index_node_of(cell).expect("pool cells keep index nodes");
            match kind {
                TaskKind::Backup => {
                    // One hop to a neighbor (free if the holder is
                    // isolated — replicate_event returns 0).
                    let estimate = u64::from(!self.topology().neighbors(source).is_empty());
                    if spent + estimate > budget {
                        break;
                    }
                    let task = queue.tasks.pop_front().expect("front exists");
                    let sent = self.replicate_event(task.cell, &task.event, source);
                    spent += sent;
                    report.repair_messages += sent;
                }
                TaskKind::Migrate | TaskKind::Recover => {
                    let route =
                        match self.transport.route_to_node(&self.topology, source, index_node) {
                            Ok(route) => route,
                            Err(_) => {
                                // No route at all (partition): drop without
                                // charging, like one-shot repair does.
                                queue.tasks.pop_front();
                                report.events_unreachable += 1;
                                continue;
                            }
                        };
                    let estimate = route.path.windows(2).filter(|w| w[0] != w[1]).count() as u64;
                    if estimate > budget {
                        // This handoff cannot fit even an idle epoch:
                        // unreachable under this budget.
                        queue.tasks.pop_front();
                        report.events_unreachable += 1;
                        continue;
                    }
                    if spent + estimate > budget {
                        break;
                    }
                    let task = queue.tasks.pop_front().expect("front exists");
                    let outcome =
                        self.deliver_traced(TraceOp::Repair, &route.path, TrafficLayer::Repair);
                    spent += outcome.transmissions;
                    report.repair_messages += outcome.transmissions;
                    if outcome.delivered {
                        match kind {
                            TaskKind::Migrate => report.events_migrated += 1,
                            TaskKind::Recover => report.events_recovered += 1,
                            TaskKind::Backup => unreachable!("handled above"),
                        }
                        self.restore_event(task.cell, task.event.clone(), index_node);
                        if self.config().replicate && !self.has_live_backup(task.cell, &task.event)
                        {
                            queue.tasks.push_back(RepairTask {
                                cell: task.cell,
                                event: task.event,
                                source: index_node,
                                kind: TaskKind::Backup,
                            });
                        }
                    } else {
                        // ARQ exhausted mid-route: the repair is spent and
                        // the event dropped, consistent with fail_nodes.
                        report.events_unreachable += 1;
                    }
                }
            }
        }
    }
}

/// A deterministic multi-epoch churn run over one Pool deployment.
///
/// Owns the plan stream, the carry-over [`RepairQueue`], and (when
/// configured) the battery ledger. Each [`ChurnScenario::advance`] call is
/// one epoch; interleave insertions and queries between calls to model a
/// live workload under churn.
#[derive(Debug)]
pub struct ChurnScenario {
    config: ChurnConfig,
    planner: ChurnPlanner,
    queue: RepairQueue,
    energy: Option<EnergyLedger>,
    prev_tx: Vec<u64>,
    prev_rx: Vec<u64>,
    epochs_run: usize,
}

impl ChurnScenario {
    /// Creates a scenario from `config`. Batteries (if any) are
    /// provisioned lazily at the first epoch, sized to the network.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnScenario {
            planner: ChurnPlanner::new(config),
            config,
            queue: RepairQueue::default(),
            energy: None,
            prev_tx: Vec::new(),
            prev_rx: Vec::new(),
            epochs_run: 0,
        }
    }

    /// Advances `pool` by one epoch: drains batteries from the virtual
    /// clock's tx/rx counters (energy-driven deaths join the scripted
    /// ones), applies the next plan, and repairs under the budget.
    ///
    /// # Errors
    ///
    /// Propagates [`PoolSystem::apply_epoch`] errors (a planner-produced
    /// plan never names unknown nodes, so in practice only pathological
    /// routing failures).
    pub fn advance(&mut self, pool: &mut PoolSystem) -> Result<FailureReport, PoolError> {
        let mut plan = self.planner.plan(pool.topology(), pool.field());
        let mut energy_deaths = 0usize;
        if let Some(budget) = self.config.energy {
            let ledger = self
                .energy
                .get_or_insert_with(|| EnergyLedger::new(0, budget.capacity, budget.model));
            let clock = pool.transport().clock();
            let n = clock.tx_counts().len();
            ledger.grow_to(n);
            self.prev_tx.resize(n, 0);
            self.prev_rx.resize(n, 0);
            // The clock's counters are cumulative; charge this epoch's
            // delta only.
            let dtx: Vec<u64> =
                clock.tx_counts().iter().zip(&self.prev_tx).map(|(c, p)| c - p).collect();
            let drx: Vec<u64> =
                clock.rx_counts().iter().zip(&self.prev_rx).map(|(c, p)| c - p).collect();
            self.prev_tx = clock.tx_counts().to_vec();
            self.prev_rx = clock.rx_counts().to_vec();
            ledger.charge_counts(&dtx, &drx);
            let mut live_left = pool.topology().alive_count() - plan.deaths.len();
            // O(1) duplicate lookup: `plan.deaths.contains()` inside this
            // loop was O(scripted-deaths × depleted) per epoch, which
            // dominates once deployments (and so depleted sets) are large.
            let mut dying = vec![false; pool.topology().len()];
            for d in &plan.deaths {
                dying[d.index()] = true;
            }
            for id in ledger.depleted_nodes() {
                // Leave at least one live node standing, as the planner
                // does for scripted deaths.
                if live_left <= 1 {
                    break;
                }
                if pool.topology().is_alive(id) && !dying[id.index()] {
                    dying[id.index()] = true;
                    plan.deaths.push(id);
                    energy_deaths += 1;
                    live_left -= 1;
                }
            }
        }
        let mut report = pool.apply_epoch(&plan, &mut self.queue, self.config.repair_budget)?;
        report.energy_deaths = energy_deaths;
        self.epochs_run += 1;
        Ok(report)
    }

    /// Runs all configured epochs against `pool`, returning the merged
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChurnScenario::advance`] error.
    pub fn run(&mut self, pool: &mut PoolSystem) -> Result<FailureReport, PoolError> {
        let mut merged = FailureReport::default();
        for _ in 0..self.config.epochs {
            merged = merged.merge(&self.advance(pool)?);
        }
        Ok(merged)
    }

    /// Repairs still deferred by the budget.
    pub fn pending_repairs(&self) -> usize {
        self.queue.len()
    }

    /// Epochs advanced so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// The battery ledger, once provisioned (None without an energy model
    /// or before the first epoch).
    pub fn energy(&self) -> Option<&EnergyLedger> {
        self.energy.as_ref()
    }

    /// The scenario's configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }
}

impl PoolSystem {
    /// Whether `cell` still has a live backup copy of `event`.
    fn has_live_backup(&self, cell: CellCoord, event: &Event) -> bool {
        self.backups.get(&cell).is_some_and(|copies| {
            copies.iter().any(|c| &c.event == event && self.topology.is_alive(c.holder))
        })
    }

    pub(crate) fn set_backups(&mut self, backups: HashMap<CellCoord, Vec<BackupCopy>>) {
        self.backups = backups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::query::RangeQuery;
    use crate::system::testkit::{build_system, ev};
    use pool_transport::TrafficLayer;

    fn all_query() -> RangeQuery {
        RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    fn load(pool: &mut PoolSystem, count: usize, seed: u64) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = pool.topology().len() as u32;
        for _ in 0..count {
            let e = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            let mut src = NodeId(rng.gen_range(0..n));
            while !pool.topology().is_alive(src) {
                src = NodeId(rng.gen_range(0..n));
            }
            pool.insert_from(src, e).unwrap();
        }
    }

    fn live_sink(pool: &PoolSystem) -> NodeId {
        let members = pool.topology().largest_component_members();
        members[0]
    }

    #[test]
    fn planner_is_deterministic_and_respects_rates() {
        let pool = build_system(300, 31, PoolConfig::paper());
        let config = ChurnConfig::new(9).with_rates(3, 2, 4);
        let mut a = ChurnPlanner::new(config);
        let mut b = ChurnPlanner::new(config);
        let pa = a.plan(pool.topology(), pool.field());
        let pb = b.plan(pool.topology(), pool.field());
        assert_eq!(pa, pb, "same seed, same plan");
        assert_eq!(pa.joins.len(), 3);
        assert_eq!(pa.deaths.len(), 2);
        assert_eq!(pa.moves.len(), 4);
        // Victims and movers are distinct.
        for (id, _) in &pa.moves {
            assert!(!pa.deaths.contains(id));
        }
        for &p in &pa.joins {
            assert!(pool.field().contains(p));
        }
        // A different seed gives a different plan.
        let mut c = ChurnPlanner::new(ChurnConfig::new(10).with_rates(3, 2, 4));
        assert_ne!(pa, c.plan(pool.topology(), pool.field()));
    }

    #[test]
    fn joins_grow_the_deployment_and_are_immediately_usable() {
        let mut pool = build_system(300, 32, PoolConfig::paper());
        load(&mut pool, 40, 1);
        let before = pool.topology().len();
        let plan = EpochPlan {
            joins: vec![pool.field().center(), Point::new(30.0, 30.0)],
            deaths: vec![],
            moves: vec![],
        };
        let mut queue = RepairQueue::default();
        let report = pool.apply_epoch(&plan, &mut queue, u64::MAX).unwrap();
        assert_eq!(pool.topology().len(), before + 2);
        assert_eq!(report.failed_nodes, 0);
        assert_eq!(report.events_lost, 0);
        assert_eq!(report.epochs, 1);
        // The joiners can insert and query right away.
        let joiner = NodeId(before as u32);
        pool.insert_from(joiner, ev(&[0.5, 0.5, 0.5])).unwrap();
        let got = pool.query_from(joiner, &all_query()).unwrap();
        assert_eq!(got.events.len(), pool.store().len());
        assert!(got.completeness.is_complete());
    }

    #[test]
    fn unknown_nodes_in_a_plan_are_typed_errors_and_nothing_applies() {
        let mut pool = build_system(300, 33, PoolConfig::paper());
        load(&mut pool, 20, 2);
        let stored = pool.store().len();
        let alive = pool.topology().alive_count();
        let mut queue = RepairQueue::default();
        let plan = EpochPlan { joins: vec![], deaths: vec![NodeId(999)], moves: vec![] };
        let err = pool.apply_epoch(&plan, &mut queue, u64::MAX).unwrap_err();
        assert!(matches!(err, PoolError::UnknownNode { node: NodeId(999), nodes: 300 }));
        let plan = EpochPlan {
            joins: vec![],
            deaths: vec![],
            moves: vec![(NodeId(700), Point::new(1.0, 1.0))],
        };
        let err = pool.apply_epoch(&plan, &mut queue, u64::MAX).unwrap_err();
        assert!(matches!(err, PoolError::UnknownNode { node: NodeId(700), .. }));
        assert_eq!(pool.store().len(), stored);
        assert_eq!(pool.topology().alive_count(), alive);
        assert!(queue.is_empty());
    }

    /// Acceptance pin: the per-epoch Repair-layer traffic never exceeds
    /// the configured budget on a loss-free radio, and deferred work
    /// carries over until it eventually drains.
    #[test]
    fn repair_traffic_per_epoch_is_bounded_by_the_budget() {
        let mut pool = build_system(300, 34, PoolConfig::paper().with_replication());
        load(&mut pool, 200, 3);
        let budget = 25u64;
        let config = ChurnConfig::new(5).with_rates(2, 10, 8).with_epochs(12).with_budget(budget);
        let mut scenario = ChurnScenario::new(config);
        let mut deferred_seen = false;
        for _ in 0..config.epochs {
            let repair_before = pool.ledger().layer_total(TrafficLayer::Repair)
                + pool.ledger().layer_total(TrafficLayer::Replication);
            let report = scenario.advance(&mut pool).unwrap();
            let repair_after = pool.ledger().layer_total(TrafficLayer::Repair)
                + pool.ledger().layer_total(TrafficLayer::Replication);
            assert!(
                repair_after - repair_before <= budget,
                "epoch spent {} > budget {budget}",
                repair_after - repair_before,
            );
            assert_eq!(report.repair_messages, repair_after - repair_before);
            deferred_seen |= report.deferred_repairs > 0;
            // Mid-churn queries never panic and stay honest.
            let got = pool.query_from(live_sink(&pool), &all_query()).unwrap();
            assert!(got.events.len() <= pool.store().len());
        }
        assert!(deferred_seen, "a 25-message budget must defer some repairs");
        // Repair-only epochs eventually drain the queue.
        let calm = ChurnConfig::new(5).with_rates(0, 0, 0).with_budget(budget);
        let mut queue_drainer = ChurnScenario::new(calm);
        queue_drainer.queue = scenario.queue.clone();
        for _ in 0..200 {
            if queue_drainer.pending_repairs() == 0 {
                break;
            }
            queue_drainer.advance(&mut pool).unwrap();
        }
        assert_eq!(queue_drainer.pending_repairs(), 0, "the queue must drain when churn stops");
    }

    /// Deferred handoffs leave the store (queries honestly miss them) and
    /// reappear once the budget lets them land.
    #[test]
    fn deferred_events_are_invisible_until_their_handoff_lands() {
        let mut pool = build_system(300, 35, PoolConfig::paper());
        load(&mut pool, 80, 4);
        let before = pool.store().len();
        // A tiny budget defers essentially all handoffs.
        let config = ChurnConfig::new(77).with_rates(0, 6, 4).with_budget(0);
        let mut scenario = ChurnScenario::new(config);
        let report = scenario.advance(&mut pool).unwrap();
        let visible = pool.store().len();
        assert_eq!(
            visible + scenario.pending_repairs() + report.events_lost + report.events_unreachable,
            before,
            "every event is visible, queued, unreachable, or lost: {report:?}"
        );
        let got = pool.query_from(live_sink(&pool), &all_query()).unwrap();
        assert_eq!(got.events.len(), visible, "queries see exactly the visible store");
        if scenario.pending_repairs() > 0 {
            // Now lift the budget: the queue drains and the events return.
            let calm = ChurnConfig::new(78).with_rates(0, 0, 0).with_budget(u64::MAX);
            let mut drainer = ChurnScenario::new(calm);
            drainer.queue = scenario.queue.clone();
            let report = drainer.advance(&mut pool).unwrap();
            assert_eq!(drainer.pending_repairs(), 0);
            assert!(report.events_migrated + report.events_recovered > 0);
            let got = pool.query_from(live_sink(&pool), &all_query()).unwrap();
            assert_eq!(got.events.len(), pool.store().len());
        }
    }

    #[test]
    fn moves_relocate_nodes_and_keep_the_system_queryable() {
        let mut pool = build_system(300, 36, PoolConfig::paper().with_replication());
        load(&mut pool, 60, 5);
        let config = ChurnConfig::new(21).with_rates(0, 0, 8).with_budget(u64::MAX);
        let mut scenario = ChurnScenario::new(config);
        for _ in 0..4 {
            let report = scenario.advance(&mut pool).unwrap();
            assert_eq!(report.failed_nodes, 0, "moves kill nobody");
            assert_eq!(report.events_lost, 0, "moves lose nothing: {report:?}");
            let got = pool.query_from(live_sink(&pool), &all_query()).unwrap();
            assert_eq!(got.events.len(), pool.store().len());
        }
        assert_eq!(pool.topology().len(), 300, "moves neither add nor remove nodes");
    }

    #[test]
    fn energy_model_kills_busy_nodes_and_reports_them() {
        let mut pool = build_system(300, 37, PoolConfig::paper());
        load(&mut pool, 150, 6);
        // A battery so small that the workload already drained it.
        let config = ChurnConfig::new(50)
            .with_rates(0, 0, 0)
            .with_budget(u64::MAX)
            .with_energy(EnergyBudget::joules(0.002));
        let mut scenario = ChurnScenario::new(config);
        let report = scenario.advance(&mut pool).unwrap();
        assert!(report.energy_deaths > 0, "busy relays must drain: {report:?}");
        assert_eq!(report.failed_nodes, report.energy_deaths, "only energy kills here");
        let ledger = scenario.energy().expect("provisioned at first advance");
        for id in ledger.depleted_nodes() {
            if pool.topology().len() > id.index() {
                // Every depleted pre-epoch node is now dead (modulo the
                // last-survivor guard, which cannot trigger at 300 nodes).
                assert!(!pool.topology().is_alive(id), "{id} drained but lives");
            }
        }
        // Subsequent epochs only charge the delta: an idle network causes
        // no further deaths.
        let report = scenario.advance(&mut pool).unwrap();
        assert_eq!(report.energy_deaths, 0, "no traffic, no new drain: {report:?}");
    }

    /// High-churn energy soak pinning the merged report. Captured from the
    /// seed implementation (the `plan.deaths.contains()` linear scan); the
    /// bitmap lookup that replaced it must reproduce every number exactly.
    #[test]
    fn energy_soak_results_are_pinned_across_death_lookup_rewrite() {
        let mut pool = build_system(300, 39, PoolConfig::paper().with_replication());
        load(&mut pool, 300, 8);
        let config = ChurnConfig::new(91)
            .with_rates(3, 6, 5)
            .with_epochs(10)
            .with_budget(500)
            .with_energy(EnergyBudget::joules(0.004));
        let mut scenario = ChurnScenario::new(config);
        let report = scenario.run(&mut pool).unwrap();
        assert!(report.energy_deaths > 0, "the soak must exercise the depleted-node loop");
        assert_eq!(
            (report.epochs, report.failed_nodes, report.energy_deaths),
            (10, 104, 44),
            "full report: {report:?}"
        );
        assert_eq!(
            (report.events_lost, report.events_migrated, report.events_recovered),
            (222, 105, 206),
            "full report: {report:?}"
        );
        assert_eq!(pool.store().len(), 76);
    }

    #[test]
    fn scenario_run_merges_epochs_and_preserves_replication_safety() {
        let mut pool = build_system(300, 38, PoolConfig::paper().with_replication());
        load(&mut pool, 100, 7);
        let config = ChurnConfig::new(13).with_rates(2, 2, 2).with_epochs(6).with_budget(u64::MAX);
        let mut scenario = ChurnScenario::new(config);
        let report = scenario.run(&mut pool).unwrap();
        assert_eq!(report.epochs, 6);
        assert!(report.failed_nodes > 0);
        // With an unbounded budget nothing stays deferred at the end of an
        // epoch, and replication keeps losses at zero absent partitions.
        assert_eq!(scenario.pending_repairs(), 0);
        if !report.partitioned {
            assert_eq!(report.events_lost, 0, "replication must prevent loss: {report:?}");
        }
        let got = pool.query_from(live_sink(&pool), &all_query()).unwrap();
        assert_eq!(got.events.len(), pool.store().len());
    }
}
