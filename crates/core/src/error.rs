//! Error types for the Pool storage scheme.

use pool_netsim::node::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised by Pool's data structures and mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// An event failed validation (wrong arity or out-of-range values).
    InvalidEvent {
        /// Human-readable reason.
        reason: String,
    },
    /// A query failed validation.
    InvalidQuery {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration parameter is out of range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The grid cannot host the requested pool layout.
    LayoutDoesNotFit {
        /// Number of pools requested.
        pools: usize,
        /// Pool side length in cells.
        side: u32,
        /// Grid columns available.
        grid_cols: u32,
        /// Grid rows available.
        grid_rows: u32,
    },
    /// A query or event arity does not match the system's dimensionality.
    DimensionMismatch {
        /// The system's configured number of dimensions.
        expected: usize,
        /// The arity that was supplied.
        got: usize,
    },
    /// An underlying routing failure.
    Routing(String),
    /// A [`NodeId`] that does not exist in the deployment was passed to an
    /// operation that requires a real node (e.g. failing a node that was
    /// never deployed).
    UnknownNode {
        /// The id that is out of range.
        node: NodeId,
        /// Number of nodes the deployment actually has.
        nodes: usize,
    },
    /// A packet could not be delivered over the lossy link layer (or the
    /// destination sits in another network partition) after exhausting the
    /// retry budget.
    Undeliverable {
        /// The node the packet started from.
        from: NodeId,
        /// The destination the packet never reached.
        to: NodeId,
        /// Transmissions spent (and charged) before giving up.
        transmissions: u64,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::InvalidEvent { reason } => write!(f, "invalid event: {reason}"),
            PoolError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            PoolError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            PoolError::LayoutDoesNotFit { pools, side, grid_cols, grid_rows } => write!(
                f,
                "cannot place {pools} pools of side {side} on a {grid_cols}x{grid_rows} grid"
            ),
            PoolError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: system is {expected}-dimensional, got {got}")
            }
            PoolError::UnknownNode { node, nodes } => {
                write!(f, "unknown node {node}: the deployment has {nodes} nodes")
            }
            PoolError::Routing(msg) => write!(f, "routing failure: {msg}"),
            PoolError::Undeliverable { from, to, transmissions } => write!(
                f,
                "undeliverable: {from} -> {to} gave up after {transmissions} transmissions"
            ),
        }
    }
}

impl Error for PoolError {}

impl From<pool_gpsr::RouteError> for PoolError {
    fn from(e: pool_gpsr::RouteError) -> Self {
        PoolError::Routing(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PoolError::DimensionMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("3-dimensional"));
        let e = PoolError::LayoutDoesNotFit { pools: 3, side: 10, grid_cols: 5, grid_rows: 5 };
        assert!(e.to_string().contains("5x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<PoolError>();
    }
}
