//! The deployed Pool system: lifecycle, insertion, and workload sharing
//! over a real (simulated) sensor network.
//!
//! This module ties the pure placement math to the network substrate:
//!
//! * **Insertion** (Algorithm 1): the detecting node computes the storage
//!   cell arithmetically and routes the event to that cell's index node.
//! * **Workload sharing** (§4.2): index nodes above their capacity delegate
//!   overflow storage to chained nearby nodes.
//!
//! Query processing (§3.2.3) lives in the sibling [`crate::forward`]
//! module; its public types ([`QueryCost`], [`QueryResult`],
//! [`AggregateOp`]) are re-exported here for compatibility.
//!
//! All routing and message accounting goes through the pluggable
//! [`Transport`] substrate: every radio hop is charged to its
//! [`pool_transport::TrafficLedger`] under a named [`TrafficLayer`] — the
//! paper's cost metric, broken down by protocol layer.

use crate::config::PoolConfig;
use crate::error::PoolError;
use crate::event::Event;
use crate::grid::{CellCoord, Grid};
use crate::insert::{storage_cell, InsertError, Placement};
use crate::layout::PoolLayout;
use crate::monitor::{MonitorId, MonitorTable, Notification};
use crate::storage::CellStore;
use pool_netsim::geometry::Rect;
use pool_netsim::node::NodeId;
use pool_netsim::stats::TrafficStats;
use pool_netsim::topology::Topology;
use pool_transport::metrics::{LedgerSnapshot, LoadReport, NodeRole};
use pool_transport::trace::{TraceOp, Tracer};
use pool_transport::{DeliveryOutcome, ReverseDelivery, TrafficLayer, TrafficLedger, Transport};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

pub use crate::forward::{
    AggregateOp, AggregateResult, Completeness, MonitorInstall, QueryCost, QueryResult,
};

/// Receipt returned by a successful insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertReceipt {
    /// Where the event was placed (pool and cell).
    pub placement: Placement,
    /// The node that physically holds the event (a delegate when workload
    /// sharing kicked in).
    pub holder: NodeId,
    /// Radio messages charged for this insertion (including notification
    /// deliveries to continuous-query sinks).
    pub messages: u64,
    /// Virtual time the insertion took end to end, in seconds. Notification
    /// and replication fan-out overlap in time (they launch together once
    /// the event is stored); the elapsed time is their critical path, not
    /// their sum.
    pub elapsed: f64,
    /// Continuous-query notifications triggered by this insertion.
    pub notifications: Vec<Notification>,
}

/// A running Pool deployment over one sensor network.
///
/// # Examples
///
/// ```
/// use pool_core::config::PoolConfig;
/// use pool_core::event::Event;
/// use pool_core::query::RangeQuery;
/// use pool_core::system::PoolSystem;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 11)?;
/// let field = deployment.field();
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let mut pool = PoolSystem::build(topology, field, PoolConfig::paper())?;
///
/// let source = pool.topology().nodes()[0].id;
/// pool.insert_from(source, Event::new(vec![0.62, 0.30, 0.11])?)?;
///
/// let sink = pool.topology().nodes()[42].id;
/// let result = pool.query_from(sink, &RangeQuery::exact(vec![
///     (0.6, 0.7), (0.2, 0.4), (0.0, 0.5),
/// ])?)?;
/// assert_eq!(result.events.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PoolSystem {
    pub(crate) topology: Arc<Topology>,
    pub(crate) field: Rect,
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) grid: Grid,
    pub(crate) layout: PoolLayout,
    pub(crate) config: PoolConfig,
    pub(crate) index_nodes: HashMap<CellCoord, NodeId>,
    pub(crate) delegates: HashMap<CellCoord, Vec<NodeId>>,
    pub(crate) store: CellStore,
    pub(crate) backups: HashMap<CellCoord, Vec<crate::failure::BackupCopy>>,
    pub(crate) monitors: MonitorTable,
    pub(crate) tracer: Tracer,
    /// Nodes that served as a query/dissemination splitter at least once
    /// (role tag for the load report).
    pub(crate) splitters_used: HashSet<NodeId>,
}

impl PoolSystem {
    /// Builds a Pool deployment over `topology`, gridding the given `field`.
    ///
    /// The index node of each pool cell is the network node nearest the
    /// cell's center (with the paper's density most cells contain no sensor,
    /// so "the node closest to the center" is resolved network-wide; several
    /// cells may share one physical index node, and hops between co-located
    /// cells are free).
    ///
    /// The routing substrate is chosen by [`PoolConfig::transport`]
    /// (plain GPSR by default, memoizing cache optionally).
    ///
    /// # Errors
    ///
    /// Configuration validation errors, [`PoolError::Routing`] for a
    /// disconnected network, and layout errors if the pools do not fit.
    pub fn build(topology: Topology, field: Rect, config: PoolConfig) -> Result<Self, PoolError> {
        Self::build_shared(Arc::new(topology), field, config)
    }

    /// Builds a Pool deployment over an already-shared `topology`.
    ///
    /// The service layer builds many per-shard systems over one network
    /// snapshot; sharing the [`Arc`] keeps them all reading the identical
    /// immutable neighbor tables without cloning the arena per shard.
    /// Behaviour is byte-identical to [`PoolSystem::build`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::build`].
    pub fn build_shared(
        topology: Arc<Topology>,
        field: Rect,
        config: PoolConfig,
    ) -> Result<Self, PoolError> {
        config.validate()?;
        topology.require_connected().map_err(|e| PoolError::Routing(e.to_string()))?;
        let grid = Grid::over(field, config.alpha)?;
        let layout = match &config.pivots {
            Some(pivots) => PoolLayout::with_pivots(&grid, config.pool_side, pivots.clone())?,
            None => PoolLayout::random(&grid, config.dims, config.pool_side, config.seed)?,
        };
        let mut transport = config.transport.build(&topology, config.planarization);
        if config.faults.is_some() || config.recovery.is_some() {
            // Faults and adaptive recovery both live on the faulty/lossy
            // decorator; a perfect link stands in when no loss model is
            // configured so the fault plan alone can be exercised.
            let lossy = config
                .lossy
                .unwrap_or_else(|| pool_transport::LossyConfig::fixed(1.0, config.seed));
            let plan = config.faults.clone().unwrap_or_default();
            transport = match config.recovery {
                Some(recovery) => Box::new(pool_transport::FaultyTransport::wrap_adaptive(
                    transport, lossy, plan, recovery,
                )),
                None => Box::new(pool_transport::FaultyTransport::wrap(transport, lossy, plan)),
            };
        } else if let Some(lossy) = config.lossy {
            transport = Box::new(pool_transport::LossyTransport::wrap(transport, lossy));
        }
        let mut index_nodes = HashMap::new();
        for pool in layout.pools() {
            for cell in pool.cells() {
                let node = topology.nearest_node(grid.center(cell));
                index_nodes.insert(cell, node);
            }
        }
        Ok(PoolSystem {
            topology,
            field,
            transport,
            grid,
            layout,
            config,
            index_nodes,
            delegates: HashMap::new(),
            store: CellStore::new(),
            backups: HashMap::new(),
            monitors: MonitorTable::new(),
            tracer: Tracer::default(),
            splitters_used: HashSet::new(),
        })
    }

    // ----- traced delivery: every routed leg goes through these ---------

    /// Delivers one packet along `path`, charging `layer` and recording a
    /// trace span for the leg.
    pub(crate) fn deliver_traced(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> DeliveryOutcome {
        self.deliver_traced_marked(op, path, layer, false)
    }

    /// [`PoolSystem::deliver_traced`] with the span's detour flag set
    /// explicitly (retries travelling a recomputed route mark it).
    fn deliver_traced_marked(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        layer: TrafficLayer,
        detour: bool,
    ) -> DeliveryOutcome {
        let mut outcome = self.transport.deliver(&self.topology, path, layer);
        outcome.detour = detour;
        let end = self.transport.clock().now();
        self.tracer.record_delivery(op, path, layer, &outcome, end);
        outcome
    }

    /// Delivers along `route` with the configured operation-level retry:
    /// when a delivery fails and [`PoolConfig::op_retry`] is set, the leg
    /// is re-attempted up to the policy's budget — recomputing a detour
    /// route around the hop that just failed (plus the transport's
    /// standing suspects) when `detour` is enabled, or re-walking the same
    /// path otherwise (the ablation arm).
    ///
    /// Every attempt charges the ledger normally (first transmissions to
    /// `layer`, ARQ to the retransmit layer) and advances the clock, so
    /// conservation identities hold unchanged. Returns the aggregated
    /// outcome (attempt totals summed, delivery state of the last attempt)
    /// and the route the packet last travelled — replies must retrace that
    /// route, which also keeps them clear of the detoured-around node.
    pub(crate) fn deliver_with_recovery(
        &mut self,
        op: TraceOp,
        route: Arc<pool_gpsr::Route>,
        layer: TrafficLayer,
    ) -> (DeliveryOutcome, Arc<pool_gpsr::Route>) {
        let mut total = self.deliver_traced(op, &route.path, layer);
        let mut used = route;
        let Some(policy) = self.config.op_retry else {
            return (total, used);
        };
        let from = used.path[0];
        let to = *used.path.last().expect("routes contain at least the source");
        let mut excluded: Vec<NodeId> = Vec::new();
        for _ in 0..policy.attempts {
            if total.delivered {
                break;
            }
            let Some((_, suspect)) = total.failed_hop else { break };
            let attempt_route = if policy.detour {
                if suspect != to && !excluded.contains(&suspect) {
                    excluded.push(suspect);
                }
                match self.transport.route_to_node_avoiding(&self.topology, from, to, &excluded) {
                    Ok(r) => r,
                    // The exclusions disconnect the endpoints: no detour
                    // exists, so the operation accepts the failure.
                    Err(_) => break,
                }
            } else {
                Arc::clone(&used)
            };
            let on_detour = policy.detour && !excluded.is_empty();
            let retry = self.deliver_traced_marked(op, &attempt_route.path, layer, on_detour);
            total.transmissions += retry.transmissions;
            total.retransmissions += retry.retransmissions;
            total.latency += retry.latency;
            total.delivered = retry.delivered;
            total.reached = retry.reached;
            total.failed_hop = retry.failed_hop;
            total.detour = on_detour;
            used = attempt_route;
        }
        (total, used)
    }

    /// Delivers `copies` reply packets in reverse along `path`, charging
    /// `layer` and recording a trace span for the leg.
    pub(crate) fn deliver_reverse_traced(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> ReverseDelivery {
        let outcome = self.transport.deliver_reverse(&self.topology, path, copies, layer);
        let end = self.transport.clock().now();
        self.tracer.record_reverse(op, path, copies, layer, &outcome, end);
        outcome
    }

    /// Same-path bounded retry for legs whose path is fixed (delegation
    /// chain walks): re-delivers the identical path until it succeeds or
    /// the retry budget runs out. Detouring never applies here — the chain
    /// *is* the route.
    pub(crate) fn deliver_with_path_retry(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> DeliveryOutcome {
        let mut total = self.deliver_traced(op, path, layer);
        let Some(policy) = self.config.op_retry else {
            return total;
        };
        for _ in 0..policy.attempts {
            if total.delivered {
                break;
            }
            let retry = self.deliver_traced(op, path, layer);
            total.transmissions += retry.transmissions;
            total.retransmissions += retry.retransmissions;
            total.latency += retry.latency;
            total.delivered = retry.delivered;
            total.reached = retry.reached;
            total.failed_hop = retry.failed_hop;
        }
        total
    }

    /// Reply-leg bounded retry: re-sends only the copies that failed to
    /// arrive, along the same path (replies retrace the forward route the
    /// query actually travelled, which already avoids any detoured-around
    /// node). Delivered copies only accumulate, so completeness can only
    /// improve; every attempt is charged normally.
    pub(crate) fn deliver_reverse_with_retry(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> ReverseDelivery {
        let mut total = self.deliver_reverse_traced(op, path, copies, layer);
        let Some(policy) = self.config.op_retry else {
            return total;
        };
        for _ in 0..policy.attempts {
            if total.delivered_copies >= copies {
                break;
            }
            let missing = copies - total.delivered_copies;
            let retry = self.deliver_reverse_traced(op, path, missing, layer);
            total.delivered_copies += retry.delivered_copies;
            total.transmissions += retry.transmissions;
            total.retransmissions += retry.retransmissions;
            total.latency += retry.latency;
        }
        total
    }

    // ----- crate-internal hooks used by the failure/repair module -------

    pub(crate) fn replace_network(&mut self, topology: Topology) {
        self.transport.rebuild(&topology);
        self.topology = Arc::new(topology);
    }

    pub(crate) fn replace_index_nodes(&mut self, index_nodes: HashMap<CellCoord, NodeId>) {
        self.index_nodes = index_nodes;
    }

    pub(crate) fn take_store(&mut self) -> CellStore {
        std::mem::take(&mut self.store)
    }

    pub(crate) fn store_mut(&mut self) -> &mut CellStore {
        &mut self.store
    }

    pub(crate) fn take_backups(&mut self) -> HashMap<CellCoord, Vec<crate::failure::BackupCopy>> {
        std::mem::take(&mut self.backups)
    }

    pub(crate) fn clear_delegates(&mut self) {
        self.delegates.clear();
    }

    pub(crate) fn drop_monitors_with_dead_sinks(&mut self) {
        let dead: Vec<MonitorId> = self
            .monitors
            .iter()
            .filter(|m| !self.topology.is_alive(m.sink))
            .map(|m| m.id)
            .collect();
        for id in dead {
            self.monitors.remove(id);
        }
    }

    /// Stores a backup copy of `event` at a live neighbor of `index_node`.
    /// Returns the messages charged (1 on a perfect radio; more with ARQ
    /// retransmissions; 0 when the index node is isolated). On a lossy
    /// radio the backup is only recorded if the copy actually arrived.
    pub(crate) fn replicate_event(
        &mut self,
        cell: CellCoord,
        event: &Event,
        index_node: NodeId,
    ) -> u64 {
        let Some(&backup_holder) = self
            .topology
            .neighbors(index_node)
            .iter()
            .min_by_key(|&&n| (self.store.count_at(n), n))
        else {
            return 0;
        };
        let outcome = self.deliver_traced(
            TraceOp::Replicate,
            &[index_node, backup_holder],
            TrafficLayer::Replication,
        );
        if outcome.delivered {
            self.backups
                .entry(cell)
                .or_default()
                .push(crate::failure::BackupCopy { event: event.clone(), holder: backup_holder });
        }
        outcome.transmissions
    }

    /// Re-creates the backup set for every stored event (after repair).
    ///
    /// # Errors
    ///
    /// Currently infallible, but typed for future repair strategies.
    pub(crate) fn rebuild_backups(&mut self) -> Result<u64, PoolError> {
        self.backups.clear();
        let snapshot: Vec<(CellCoord, Event, NodeId)> = self
            .store
            .iter()
            .flat_map(|(cell, stored)| stored.iter().map(|s| (*cell, s.event.clone(), s.holder)))
            .collect();
        let mut hops = 0u64;
        for (cell, event, holder) in snapshot {
            hops += self.replicate_event(cell, &event, holder);
        }
        Ok(hops)
    }

    /// The underlying network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The deployment field.
    pub fn field(&self) -> Rect {
        self.field
    }

    /// The virtual grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The pool layout.
    pub fn layout(&self) -> &PoolLayout {
        &self.layout
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The index node serving `cell`, or `None` if the cell belongs to no
    /// pool.
    pub fn index_node_of(&self, cell: CellCoord) -> Option<NodeId> {
        self.index_nodes.get(&cell).copied()
    }

    /// The event store (for load inspection).
    pub fn store(&self) -> &CellStore {
        &self.store
    }

    /// All traffic charged so far (insertions and queries), as the flat
    /// total + per-node load counter.
    pub fn traffic(&self) -> &TrafficStats {
        self.transport.ledger().stats()
    }

    /// The per-layer message ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        self.transport.ledger()
    }

    /// The delivery trace: one [`pool_transport::Span`] per routed leg
    /// (bounded ring buffer).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the delivery trace (e.g. to clear it between
    /// experiment phases).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Assembles the per-node load report: message loads (total and per
    /// layer) from the ledger, radio busy times from the virtual clock,
    /// storage loads from the cell store, and role tags from the
    /// index/splitter/delegate registries.
    pub fn load_report(&self) -> LoadReport {
        let mut report = LoadReport::from_ledger(self.transport.ledger());
        report.set_busy_times(self.transport.clock().busy_times());
        report.set_delivery_stats(self.transport.delivery_stats());
        for node in self.topology.nodes() {
            report.set_events_held(node.id, self.store.count_at(node.id) as u64);
        }
        for &node in self.index_nodes.values() {
            report.tag(node, NodeRole::Index);
        }
        for chain in self.delegates.values() {
            for &node in chain {
                report.tag(node, NodeRole::Delegate);
            }
        }
        for &node in &self.splitters_used {
            report.tag(node, NodeRole::Splitter);
        }
        report
    }

    /// The routing substrate.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Mutable access to the routing substrate (e.g. to issue probe routes
    /// in tests or clear the ledger between experiment phases).
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        self.transport.as_mut()
    }

    /// The delegation chain of `cell` (empty without workload sharing).
    pub fn delegates_of(&self, cell: CellCoord) -> &[NodeId] {
        self.delegates.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Inserts an event detected at node `source` (Algorithm 1).
    ///
    /// On a lossy radio the event travels hop by hop with bounded ARQ; if
    /// some hop exhausts its retry budget the insertion fails with
    /// [`InsertError::Undeliverable`] (the transmissions already spent stay
    /// charged — the radio sent them). Notification drops do *not* fail the
    /// insertion; they are recorded on the receipt's
    /// [`Notification::delivered`] flags.
    ///
    /// # Errors
    ///
    /// [`InsertError::Undeliverable`] when the event cannot reach its
    /// storage cell; [`InsertError::Pool`] wrapping
    /// [`PoolError::DimensionMismatch`] for wrong arity or
    /// [`PoolError::Routing`] for pathological routing failures.
    pub fn insert_from(
        &mut self,
        source: NodeId,
        event: Event,
    ) -> Result<InsertReceipt, InsertError> {
        if event.dims() != self.config.dims {
            return Err(InsertError::Pool(PoolError::DimensionMismatch {
                expected: self.config.dims,
                got: event.dims(),
            }));
        }
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let op_start = self.transport.clock().now();
        let detected_cell = self.grid.cell_of(self.topology.position(source));
        let placement = storage_cell(&self.layout, &self.grid, &event, detected_cell);
        let index_node =
            *self.index_nodes.get(&placement.cell).expect("pool cells all have index nodes");
        let route = match self.transport.route_to_node(&self.topology, source, index_node) {
            Ok(route) => route,
            // No route at all (the destination sits in another partition):
            // undeliverable before a single transmission.
            Err(pool_gpsr::RouteError::NotDelivered { delivered, .. }) => {
                return Err(InsertError::Undeliverable {
                    from: source,
                    to: index_node,
                    reached: delivered,
                    transmissions: 0,
                });
            }
            Err(e) => return Err(InsertError::Pool(e.into())),
        };
        let outcome = self.deliver_traced(TraceOp::Insert, &route.path, TrafficLayer::Insert);
        let mut messages = outcome.transmissions;
        if !outcome.delivered {
            return Err(InsertError::Undeliverable {
                from: source,
                to: index_node,
                reached: outcome.reached,
                transmissions: outcome.transmissions,
            });
        }

        // §4.2 workload sharing: walk the cell's delegation chain to the
        // first holder with spare capacity, extending it if necessary.
        let holder = match self.config.sharing {
            None => index_node,
            Some(policy) => {
                let (holder, chain_hops) =
                    self.place_with_sharing(placement.cell, index_node, policy)?;
                messages += chain_hops;
                holder
            }
        };
        // Continuous queries (§6 extension): the index node checks the
        // monitors registered on this cell and notifies matching sinks. A
        // lost notification is recorded, not fatal — the event is already
        // stored. Notifications (and the replication copy below) all launch
        // from the moment the event is stored, so they overlap in virtual
        // time: the clock is re-seeked to `t_stored` before each fan-out
        // branch and the insertion ends at the latest branch.
        let t_stored = self.transport.clock().now();
        let mut op_end = t_stored;
        let mut notifications = Vec::new();
        let firing: Vec<(MonitorId, NodeId)> = self
            .monitors
            .watching(placement.cell)
            .filter(|m| m.query.matches(&event))
            .map(|m| (m.id, m.sink))
            .collect();
        for (monitor, sink) in firing {
            self.transport.clock_mut().seek(t_stored);
            match self.transport.route_to_node(&self.topology, index_node, sink) {
                Ok(route) => {
                    let outcome =
                        self.deliver_traced(TraceOp::Notify, &route.path, TrafficLayer::Monitor);
                    messages += outcome.transmissions;
                    notifications.push(Notification {
                        monitor,
                        sink,
                        messages: outcome.transmissions,
                        delivered: outcome.delivered,
                    });
                }
                Err(_) => notifications.push(Notification {
                    monitor,
                    sink,
                    messages: 0,
                    delivered: false,
                }),
            }
            op_end = op_end.max(self.transport.clock().now());
        }

        // Optional failure-tolerance replication: one backup copy at a
        // neighbor of the index node (overlapping the notifications).
        if self.config.replicate {
            self.transport.clock_mut().seek(t_stored);
            messages += self.replicate_event(placement.cell, &event, index_node);
            op_end = op_end.max(self.transport.clock().now());
        }
        self.transport.clock_mut().seek(op_end);

        self.store.insert(placement.cell, event, holder);
        // Conservation audit: the receipt's flat count must equal the
        // ledger growth across exactly the layers insertion touches.
        ledger_before.debug_assert_sum(
            self.transport.ledger(),
            "insert_from",
            messages,
            &[
                TrafficLayer::Insert,
                TrafficLayer::Monitor,
                TrafficLayer::Replication,
                TrafficLayer::Retransmit,
            ],
        );
        Ok(InsertReceipt { placement, holder, messages, elapsed: op_end - op_start, notifications })
    }

    /// The continuous-query registry (for inspection).
    pub fn monitors(&self) -> &MonitorTable {
        &self.monitors
    }

    /// Routes a unicast, delivers it over the (possibly lossy) link layer,
    /// charging every transmission to the ledger under `layer` and tracing
    /// the leg under `op`. Returns the delivery outcome. Shared by the
    /// batch, nearest-neighbor, and failure-repair modules.
    ///
    /// # Errors
    ///
    /// [`PoolError::Undeliverable`] when ARQ exhausts its retry budget on
    /// some hop (the transmissions already spent stay charged).
    pub(crate) fn route_and_record(
        &mut self,
        op: TraceOp,
        from: NodeId,
        to: NodeId,
        layer: TrafficLayer,
    ) -> Result<DeliveryOutcome, PoolError> {
        let route = self.transport.route_to_node(&self.topology, from, to)?;
        let outcome = self.deliver_traced(op, &route.path, layer);
        if outcome.delivered {
            Ok(outcome)
        } else {
            Err(PoolError::Undeliverable { from, to, transmissions: outcome.transmissions })
        }
    }

    /// Finds (or creates) the holder for a new event in `cell` under the
    /// sharing policy, charging one hop per chain link walked.
    fn place_with_sharing(
        &mut self,
        cell: CellCoord,
        index_node: NodeId,
        policy: crate::config::SharingPolicy,
    ) -> Result<(NodeId, u64), PoolError> {
        let mut chain = vec![index_node];
        chain.extend_from_slice(self.delegates_of(cell));
        for (i, &node) in chain.iter().enumerate() {
            if self.store.count_at(node) < policy.capacity {
                let outcome =
                    self.deliver_traced(TraceOp::Insert, &chain[..=i], TrafficLayer::Insert);
                // If the chain walk stalls on a lossy link, the event rests
                // where it stopped — degraded placement rather than loss,
                // since the event already survived the trip to the cell.
                let holder = if outcome.delivered { node } else { outcome.reached };
                return Ok((holder, outcome.transmissions));
            }
        }
        // Everyone in the chain is full: recruit the least-loaded neighbor
        // of the chain tail that is not already in the chain.
        let tail = *chain.last().expect("chain contains at least the index node");
        let new_delegate = self
            .topology
            .neighbors(tail)
            .iter()
            .copied()
            .filter(|n| !chain.contains(n))
            .min_by_key(|&n| (self.store.count_at(n), n))
            .ok_or_else(|| {
                PoolError::Routing(format!("no delegate candidate near {tail} for cell {cell}"))
            })?;
        chain.push(new_delegate);
        let outcome = self.deliver_traced(TraceOp::Insert, &chain, TrafficLayer::Insert);
        if outcome.delivered {
            self.delegates.entry(cell).or_default().push(new_delegate);
            Ok((new_delegate, outcome.transmissions))
        } else {
            Ok((outcome.reached, outcome.transmissions))
        }
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared builders for system-level tests (also used by the forward
    //! module's tests).

    use super::*;
    use pool_netsim::deployment::Deployment;

    pub(crate) fn build_system(n: usize, seed: u64, config: PoolConfig) -> PoolSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(n, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), config).unwrap();
            }
            s += 1000;
        }
    }

    pub(crate) fn ev(v: &[f64]) -> Event {
        Event::new(v.to_vec()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::{build_system, ev};
    use super::*;
    use crate::query::RangeQuery;

    #[test]
    fn tied_events_stored_once_and_found() {
        let mut pool = build_system(300, 3, PoolConfig::paper());
        pool.insert_from(NodeId(5), ev(&[0.4, 0.4, 0.2])).unwrap();
        assert_eq!(pool.store().len(), 1);
        let q = RangeQuery::exact(vec![(0.3, 0.5), (0.3, 0.5), (0.1, 0.3)]).unwrap();
        let result = pool.query_from(NodeId(100), &q).unwrap();
        assert_eq!(result.events.len(), 1);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut pool = build_system(300, 4, PoolConfig::paper());
        let err = pool.insert_from(NodeId(0), ev(&[0.5, 0.5]));
        assert!(matches!(
            err,
            Err(InsertError::Pool(PoolError::DimensionMismatch { expected: 3, got: 2 }))
        ));
        let q = RangeQuery::exact(vec![(0.0, 1.0)]).unwrap();
        assert!(matches!(pool.query_from(NodeId(0), &q), Err(PoolError::DimensionMismatch { .. })));
    }

    #[test]
    fn workload_sharing_bounds_node_load() {
        use crate::config::SharingPolicy;
        let config = PoolConfig::paper().with_sharing(SharingPolicy::new(5));
        let mut pool = build_system(300, 7, config);
        // A heavily skewed workload: everything lands in the same cell.
        for i in 0..40 {
            pool.insert_from(NodeId(i % 300), ev(&[0.951, 0.052, 0.013])).unwrap();
        }
        assert_eq!(pool.store().len(), 40);
        assert!(
            pool.store().max_node_load() <= 5,
            "load {} exceeds capacity",
            pool.store().max_node_load()
        );
        // The same skew without sharing concentrates everything.
        let mut unshared = build_system(300, 7, PoolConfig::paper());
        for i in 0..40 {
            unshared.insert_from(NodeId(i % 300), ev(&[0.951, 0.052, 0.013])).unwrap();
        }
        assert!(unshared.store().max_node_load() >= 40);
    }

    #[test]
    fn workload_sharing_loses_no_events() {
        use crate::config::SharingPolicy;
        let config = PoolConfig::paper().with_sharing(SharingPolicy::new(3));
        let mut pool = build_system(300, 8, config);
        for i in 0..30 {
            pool.insert_from(NodeId(i), ev(&[0.851, 0.052, 0.013])).unwrap();
        }
        let q = RangeQuery::exact(vec![(0.8, 0.9), (0.0, 0.1), (0.0, 0.1)]).unwrap();
        let result = pool.query_from(NodeId(200), &q).unwrap();
        assert_eq!(result.events.len(), 30, "delegated events must remain queryable");
    }

    #[test]
    fn monitors_notify_only_matching_insertions() {
        let mut pool = build_system(300, 20, PoolConfig::paper());
        let sink = NodeId(7);
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.0, 0.5), (0.0, 0.5)]).unwrap();
        let install = pool.install_monitor(sink, q).unwrap();
        let id = install.id;
        assert!(install.cost.forward_messages > 0);
        assert!(install.completeness.is_complete(), "loss-free installs reach every cell");
        assert_eq!(pool.monitors().len(), 1);

        // A matching insertion notifies the sink.
        let r = pool.insert_from(NodeId(100), ev(&[0.65, 0.3, 0.2])).unwrap();
        assert_eq!(r.notifications.len(), 1);
        assert_eq!(r.notifications[0].sink, sink);
        assert_eq!(r.notifications[0].monitor, id);

        // A non-matching insertion does not.
        let r = pool.insert_from(NodeId(100), ev(&[0.95, 0.3, 0.2])).unwrap();
        assert!(r.notifications.is_empty());

        // After removal, nothing fires.
        let removed = pool.remove_monitor(id).unwrap();
        assert!(removed.is_some());
        let r = pool.insert_from(NodeId(100), ev(&[0.66, 0.3, 0.2])).unwrap();
        assert!(r.notifications.is_empty());
        assert!(pool.remove_monitor(id).unwrap().is_none());
    }

    #[test]
    fn monitor_catches_every_matching_event_in_a_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut pool = build_system(300, 21, PoolConfig::paper());
        let q = RangeQuery::from_bounds(vec![Some((0.8, 1.0)), None, None]).unwrap();
        pool.install_monitor(NodeId(0), q.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut expected = 0usize;
        let mut fired = 0usize;
        for _ in 0..150 {
            let event = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            if q.matches(&event) {
                expected += 1;
            }
            let r = pool.insert_from(NodeId(rng.gen_range(0..300)), event).unwrap();
            fired += r.notifications.len();
        }
        assert!(expected > 0, "workload should contain matches");
        assert_eq!(fired, expected, "every matching insertion must notify exactly once");
    }

    #[test]
    fn insertions_accrue_virtual_time_and_fanout_overlaps() {
        let mut pool = build_system(300, 14, PoolConfig::paper().with_replication());
        let sink = NodeId(7);
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.0, 0.5), (0.0, 0.5)]).unwrap();
        pool.install_monitor(sink, q).unwrap();
        let before = pool.transport().clock().now();
        let r = pool.insert_from(NodeId(100), ev(&[0.65, 0.3, 0.2])).unwrap();
        let after = pool.transport().clock().now();
        assert!(r.elapsed > 0.0, "a routed insertion takes virtual time");
        assert!((after - before - r.elapsed).abs() < 1e-12, "the clock advances by elapsed");
        assert_eq!(r.notifications.len(), 1);
        // The busy-time ledger saw the transmissions: utilization shows up
        // in the load report.
        let report = pool.load_report();
        assert!(report.busy_distribution().max > 0.0);
        let source_row =
            report.nodes().iter().find(|n| n.node == NodeId(100)).expect("row for the source");
        assert!(source_row.busy_time > 0.0, "the source transmitted");
    }

    #[test]
    fn traffic_ledger_accumulates() {
        let mut pool = build_system(300, 12, PoolConfig::paper());
        let r = pool.insert_from(NodeId(0), ev(&[0.5, 0.4, 0.3])).unwrap();
        assert_eq!(pool.traffic().total_messages(), r.messages);
        let q = RangeQuery::exact(vec![(0.4, 0.6), (0.3, 0.5), (0.2, 0.4)]).unwrap();
        let res = pool.query_from(NodeId(1), &q).unwrap();
        assert_eq!(pool.traffic().total_messages(), r.messages + res.cost.total());
    }

    #[test]
    fn ledger_layers_partition_system_traffic() {
        let mut pool = build_system(300, 13, PoolConfig::paper().with_replication());
        let r = pool.insert_from(NodeId(0), ev(&[0.5, 0.4, 0.3])).unwrap();
        let q = RangeQuery::exact(vec![(0.4, 0.6), (0.3, 0.5), (0.2, 0.4)]).unwrap();
        let res = pool.query_from(NodeId(1), &q).unwrap();
        let ledger = pool.ledger();
        let layered: u64 = ledger.by_layer().iter().map(|(_, n)| n).sum();
        assert_eq!(layered, ledger.total_messages(), "layers must partition the total");
        assert_eq!(
            ledger.layer_total(TrafficLayer::Insert)
                + ledger.layer_total(TrafficLayer::Replication),
            r.messages,
        );
        assert_eq!(ledger.layer_total(TrafficLayer::Forward), res.cost.forward_messages);
        assert_eq!(ledger.layer_total(TrafficLayer::Reply), res.cost.reply_messages);
    }
}
