//! The deployed Pool system: insertion, query processing, and forwarding
//! over a real (simulated) sensor network.
//!
//! This module ties the pure placement/resolving math to the network
//! substrate:
//!
//! * **Insertion** (Algorithm 1): the detecting node computes the storage
//!   cell arithmetically and GPSR-routes the event to that cell's index
//!   node.
//! * **Query processing** (§3.2.3): the sink sends the query to one
//!   *splitter* per relevant pool (the pool's index node closest to the
//!   sink); each splitter fans the query out to the relevant cells; replies
//!   return along the same paths, aggregated at the splitter.
//! * **Workload sharing** (§4.2): index nodes above their capacity delegate
//!   overflow storage to chained nearby nodes.
//!
//! Every radio hop is charged to a [`TrafficStats`] ledger — the paper's
//! cost metric.

use crate::config::PoolConfig;
use crate::error::PoolError;
use crate::event::Event;
use crate::grid::{CellCoord, Grid};
use crate::insert::{storage_cell, Placement};
use crate::layout::PoolLayout;
use crate::monitor::{MonitorId, MonitorTable, Notification};
use crate::query::RangeQuery;
use crate::resolve::relevant_cells;
use crate::storage::CellStore;
use pool_gpsr::Gpsr;
use pool_netsim::geometry::Rect;
use pool_netsim::node::NodeId;
use pool_netsim::stats::TrafficStats;
use pool_netsim::topology::Topology;
use std::collections::HashMap;

/// Receipt returned by a successful insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertReceipt {
    /// Where the event was placed (pool and cell).
    pub placement: Placement,
    /// The node that physically holds the event (a delegate when workload
    /// sharing kicked in).
    pub holder: NodeId,
    /// Radio messages charged for this insertion (including notification
    /// deliveries to continuous-query sinks).
    pub messages: u64,
    /// Continuous-query notifications triggered by this insertion.
    pub notifications: Vec<Notification>,
}

/// Message-count breakdown for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCost {
    /// Messages spent forwarding the query (sink → splitters → cells →
    /// delegates).
    pub forward_messages: u64,
    /// Messages spent returning qualifying events.
    pub reply_messages: u64,
}

impl QueryCost {
    /// Total messages — the paper's per-query cost metric.
    pub fn total(&self) -> u64 {
        self.forward_messages + self.reply_messages
    }
}

/// The outcome of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// All qualifying events, in pool/cell resolution order.
    pub events: Vec<Event>,
    /// Message cost breakdown.
    pub cost: QueryCost,
    /// Number of relevant cells visited (Theorem 3.2's output size).
    pub relevant_cells: usize,
    /// Number of pools that had at least one relevant cell.
    pub pools_visited: usize,
}

/// Aggregate operations computable at splitters (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Number of qualifying events.
    Count,
    /// Sum of one attribute over qualifying events.
    Sum(usize),
    /// Mean of one attribute.
    Avg(usize),
    /// Minimum of one attribute.
    Min(usize),
    /// Maximum of one attribute.
    Max(usize),
}

impl AggregateOp {
    /// Applies the operation to a set of qualifying events. Returns `None`
    /// for value aggregates over an empty set (COUNT of nothing is 0).
    pub fn apply(&self, events: &[Event]) -> Option<f64> {
        match *self {
            AggregateOp::Count => Some(events.len() as f64),
            AggregateOp::Sum(d) => {
                (!events.is_empty()).then(|| events.iter().map(|e| e.value(d)).sum())
            }
            AggregateOp::Avg(d) => (!events.is_empty())
                .then(|| events.iter().map(|e| e.value(d)).sum::<f64>() / events.len() as f64),
            AggregateOp::Min(d) => {
                events.iter().map(|e| e.value(d)).min_by(|a, b| a.partial_cmp(b).unwrap())
            }
            AggregateOp::Max(d) => {
                events.iter().map(|e| e.value(d)).max_by(|a, b| a.partial_cmp(b).unwrap())
            }
        }
    }
}

/// A running Pool deployment over one sensor network.
///
/// # Examples
///
/// ```
/// use pool_core::config::PoolConfig;
/// use pool_core::event::Event;
/// use pool_core::query::RangeQuery;
/// use pool_core::system::PoolSystem;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 11)?;
/// let field = deployment.field();
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let mut pool = PoolSystem::build(topology, field, PoolConfig::paper())?;
///
/// let source = pool.topology().nodes()[0].id;
/// pool.insert_from(source, Event::new(vec![0.62, 0.30, 0.11])?)?;
///
/// let sink = pool.topology().nodes()[42].id;
/// let result = pool.query_from(sink, &RangeQuery::exact(vec![
///     (0.6, 0.7), (0.2, 0.4), (0.0, 0.5),
/// ])?)?;
/// assert_eq!(result.events.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PoolSystem {
    topology: Topology,
    field: Rect,
    gpsr: Gpsr,
    grid: Grid,
    layout: PoolLayout,
    config: PoolConfig,
    index_nodes: HashMap<CellCoord, NodeId>,
    delegates: HashMap<CellCoord, Vec<NodeId>>,
    store: CellStore,
    backups: HashMap<CellCoord, Vec<crate::failure::BackupCopy>>,
    monitors: MonitorTable,
    traffic: TrafficStats,
}

impl PoolSystem {
    /// Builds a Pool deployment over `topology`, gridding the given `field`.
    ///
    /// The index node of each pool cell is the network node nearest the
    /// cell's center (with the paper's density most cells contain no sensor,
    /// so "the node closest to the center" is resolved network-wide; several
    /// cells may share one physical index node, and hops between co-located
    /// cells are free).
    ///
    /// # Errors
    ///
    /// Configuration validation errors, [`PoolError::Routing`] for a
    /// disconnected network, and layout errors if the pools do not fit.
    pub fn build(topology: Topology, field: Rect, config: PoolConfig) -> Result<Self, PoolError> {
        config.validate()?;
        topology.require_connected().map_err(|e| PoolError::Routing(e.to_string()))?;
        let grid = Grid::over(field, config.alpha)?;
        let layout = match &config.pivots {
            Some(pivots) => PoolLayout::with_pivots(&grid, config.pool_side, pivots.clone())?,
            None => PoolLayout::random(&grid, config.dims, config.pool_side, config.seed)?,
        };
        let gpsr = Gpsr::new(&topology, config.planarization);
        let mut index_nodes = HashMap::new();
        for pool in layout.pools() {
            for cell in pool.cells() {
                let node = topology.nearest_node(grid.center(cell));
                index_nodes.insert(cell, node);
            }
        }
        let n = topology.len();
        Ok(PoolSystem {
            topology,
            field,
            gpsr,
            grid,
            layout,
            config,
            index_nodes,
            delegates: HashMap::new(),
            store: CellStore::new(),
            backups: HashMap::new(),
            monitors: MonitorTable::new(),
            traffic: TrafficStats::new(n),
        })
    }

    // ----- crate-internal hooks used by the failure/repair module -------

    pub(crate) fn replace_network(&mut self, topology: Topology, gpsr: Gpsr) {
        self.topology = topology;
        self.gpsr = gpsr;
    }

    pub(crate) fn replace_index_nodes(&mut self, index_nodes: HashMap<CellCoord, NodeId>) {
        self.index_nodes = index_nodes;
    }

    pub(crate) fn take_store(&mut self) -> CellStore {
        std::mem::take(&mut self.store)
    }

    pub(crate) fn store_mut(&mut self) -> &mut CellStore {
        &mut self.store
    }

    pub(crate) fn take_backups(
        &mut self,
    ) -> HashMap<CellCoord, Vec<crate::failure::BackupCopy>> {
        std::mem::take(&mut self.backups)
    }

    pub(crate) fn clear_delegates(&mut self) {
        self.delegates.clear();
    }

    pub(crate) fn drop_monitors_with_dead_sinks(&mut self) {
        let dead: Vec<MonitorId> = self
            .monitors
            .iter()
            .filter(|m| !self.topology.is_alive(m.sink))
            .map(|m| m.id)
            .collect();
        for id in dead {
            self.monitors.remove(id);
        }
    }

    /// Stores a backup copy of `event` at a live neighbor of `index_node`,
    /// charging one message. Returns the hops charged (1, or 0 when the
    /// index node is isolated and no backup is possible).
    fn replicate_event(&mut self, cell: CellCoord, event: &Event, index_node: NodeId) -> u64 {
        let Some(&backup_holder) = self
            .topology
            .neighbors(index_node)
            .iter()
            .min_by_key(|&&n| (self.store.count_at(n), n))
        else {
            return 0;
        };
        self.traffic.record_hop(index_node, backup_holder);
        self.backups
            .entry(cell)
            .or_default()
            .push(crate::failure::BackupCopy { event: event.clone(), holder: backup_holder });
        1
    }

    /// Re-creates the backup set for every stored event (after repair).
    ///
    /// # Errors
    ///
    /// Currently infallible, but typed for future repair strategies.
    pub(crate) fn rebuild_backups(&mut self) -> Result<u64, PoolError> {
        self.backups.clear();
        let snapshot: Vec<(CellCoord, Event, NodeId)> = self
            .store
            .iter()
            .flat_map(|(cell, stored)| {
                stored.iter().map(|s| (*cell, s.event.clone(), s.holder))
            })
            .collect();
        let mut hops = 0u64;
        for (cell, event, holder) in snapshot {
            hops += self.replicate_event(cell, &event, holder);
        }
        Ok(hops)
    }

    /// The underlying network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The deployment field.
    pub fn field(&self) -> Rect {
        self.field
    }

    /// The virtual grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The pool layout.
    pub fn layout(&self) -> &PoolLayout {
        &self.layout
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The index node serving `cell`, or `None` if the cell belongs to no
    /// pool.
    pub fn index_node_of(&self, cell: CellCoord) -> Option<NodeId> {
        self.index_nodes.get(&cell).copied()
    }

    /// The event store (for load inspection).
    pub fn store(&self) -> &CellStore {
        &self.store
    }

    /// All traffic charged so far (insertions and queries).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// The delegation chain of `cell` (empty without workload sharing).
    pub fn delegates_of(&self, cell: CellCoord) -> &[NodeId] {
        self.delegates.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Inserts an event detected at node `source` (Algorithm 1).
    ///
    /// # Errors
    ///
    /// [`PoolError::DimensionMismatch`] for wrong arity and
    /// [`PoolError::Routing`] on routing failure.
    pub fn insert_from(&mut self, source: NodeId, event: Event) -> Result<InsertReceipt, PoolError> {
        if event.dims() != self.config.dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config.dims,
                got: event.dims(),
            });
        }
        let detected_cell = self.grid.cell_of(self.topology.position(source));
        let placement = storage_cell(&self.layout, &self.grid, &event, detected_cell);
        let index_node =
            *self.index_nodes.get(&placement.cell).expect("pool cells all have index nodes");
        let route = self.gpsr.route_to_node(&self.topology, source, index_node)?;
        self.traffic.record_path(&route.path);
        let mut messages = route.hops() as u64;

        // §4.2 workload sharing: walk the cell's delegation chain to the
        // first holder with spare capacity, extending it if necessary.
        let holder = match self.config.sharing {
            None => index_node,
            Some(policy) => {
                let (holder, chain_hops) = self.place_with_sharing(placement.cell, index_node, policy)?;
                messages += chain_hops;
                holder
            }
        };
        // Continuous queries (§6 extension): the index node checks the
        // monitors registered on this cell and notifies matching sinks.
        let mut notifications = Vec::new();
        let firing: Vec<(MonitorId, NodeId)> = self
            .monitors
            .watching(placement.cell)
            .filter(|m| m.query.matches(&event))
            .map(|m| (m.id, m.sink))
            .collect();
        for (monitor, sink) in firing {
            let route = self.gpsr.route_to_node(&self.topology, index_node, sink)?;
            self.traffic.record_path(&route.path);
            messages += route.hops() as u64;
            notifications.push(Notification { monitor, sink, messages: route.hops() as u64 });
        }

        // Optional failure-tolerance replication: one backup copy at a
        // neighbor of the index node.
        if self.config.replicate {
            messages += self.replicate_event(placement.cell, &event, index_node);
        }

        self.store.insert(placement.cell, event, holder);
        Ok(InsertReceipt { placement, holder, messages, notifications })
    }

    /// Installs a continuous monitoring query (§6): `sink` will be notified
    /// of every future insertion matching `query`. Installation is
    /// forwarded like a one-shot query (sink → splitters → relevant
    /// cells); the returned cost covers that dissemination.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::query_from`].
    pub fn install_monitor(
        &mut self,
        sink: NodeId,
        query: RangeQuery,
    ) -> Result<(MonitorId, QueryCost), PoolError> {
        if query.dims() != self.config.dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config.dims,
                got: query.dims(),
            });
        }
        let relevant = relevant_cells(&self.layout, &query);
        let cost = self.disseminate(sink, &relevant)?;
        let cells: Vec<CellCoord> = relevant.iter().map(|&(_, c)| c).collect();
        let id = self.monitors.install(sink, query, &cells);
        Ok((id, cost))
    }

    /// Removes a continuous monitoring query, forwarding the removal to the
    /// cells that were watching (same tree as installation).
    ///
    /// Returns the removal's dissemination cost, or `None` if the handle
    /// was not installed.
    ///
    /// # Errors
    ///
    /// Routing failures while disseminating the removal.
    pub fn remove_monitor(&mut self, id: MonitorId) -> Result<Option<QueryCost>, PoolError> {
        let Some(monitor) = self.monitors.get(id).cloned() else {
            return Ok(None);
        };
        let cells = self.monitors.cells_of(id);
        let relevant: Vec<(usize, CellCoord)> = cells
            .into_iter()
            .filter_map(|c| self.layout.pool_of_cell(c).map(|p| (p.dim, c)))
            .collect();
        let cost = self.disseminate(monitor.sink, &relevant)?;
        self.monitors.remove(id);
        Ok(Some(cost))
    }

    /// The continuous-query registry (for inspection).
    pub fn monitors(&self) -> &MonitorTable {
        &self.monitors
    }

    /// Routes a unicast and charges it to the ledger, returning the hop
    /// count. Shared by the nearest-neighbor module.
    pub(crate) fn route_and_record(&mut self, from: NodeId, to: NodeId) -> Result<u64, PoolError> {
        let route = self.gpsr.route_to_node(&self.topology, from, to)?;
        self.traffic.record_path(&route.path);
        Ok(route.hops() as u64)
    }

    /// Forwards a control message (installation/removal) from `sink` to
    /// every cell in `relevant` through the splitter tree, charging only
    /// forward messages.
    fn disseminate(
        &mut self,
        sink: NodeId,
        relevant: &[(usize, CellCoord)],
    ) -> Result<QueryCost, PoolError> {
        let mut by_pool: HashMap<usize, Vec<CellCoord>> = HashMap::new();
        for &(dim, cell) in relevant {
            by_pool.entry(dim).or_default().push(cell);
        }
        let mut cost = QueryCost::default();
        let mut dims: Vec<usize> = by_pool.keys().copied().collect();
        dims.sort_unstable();
        for dim in dims {
            let splitter = self.splitter_of(dim, sink);
            let to_splitter = self.gpsr.route_to_node(&self.topology, sink, splitter)?;
            self.traffic.record_path(&to_splitter.path);
            cost.forward_messages += to_splitter.hops() as u64;
            for &cell in &by_pool[&dim] {
                let index_node = self.index_nodes[&cell];
                let to_cell = self.gpsr.route_to_node(&self.topology, splitter, index_node)?;
                self.traffic.record_path(&to_cell.path);
                cost.forward_messages += to_cell.hops() as u64;
            }
        }
        Ok(cost)
    }

    /// Finds (or creates) the holder for a new event in `cell` under the
    /// sharing policy, charging one hop per chain link walked.
    fn place_with_sharing(
        &mut self,
        cell: CellCoord,
        index_node: NodeId,
        policy: crate::config::SharingPolicy,
    ) -> Result<(NodeId, u64), PoolError> {
        let mut chain = vec![index_node];
        chain.extend_from_slice(self.delegates_of(cell));
        let mut hops = 0u64;
        for (i, &node) in chain.iter().enumerate() {
            if self.store.count_at(node) < policy.capacity {
                hops += i as u64; // walked i links to reach this holder
                self.record_chain(&chain[..=i]);
                return Ok((node, hops));
            }
        }
        // Everyone in the chain is full: recruit the least-loaded neighbor
        // of the chain tail that is not already in the chain.
        let tail = *chain.last().expect("chain contains at least the index node");
        let new_delegate = self
            .topology
            .neighbors(tail)
            .iter()
            .copied()
            .filter(|n| !chain.contains(n))
            .min_by_key(|&n| (self.store.count_at(n), n))
            .ok_or_else(|| {
                PoolError::Routing(format!("no delegate candidate near {tail} for cell {cell}"))
            })?;
        self.delegates.entry(cell).or_default().push(new_delegate);
        chain.push(new_delegate);
        hops += (chain.len() - 1) as u64;
        self.record_chain(&chain);
        Ok((new_delegate, hops))
    }

    fn record_chain(&mut self, chain: &[NodeId]) {
        self.traffic.record_path(chain);
    }

    /// The splitter of pool `dim` for a query issued at `sink`: the pool's
    /// index node closest to the sink (§3.2.3).
    pub fn splitter_of(&self, dim: usize, sink: NodeId) -> NodeId {
        let sink_pos = self.topology.position(sink);
        let pool = self.layout.pool(dim);
        pool.cells()
            .map(|c| self.index_nodes[&c])
            .min_by(|&a, &b| {
                self.topology
                    .position(a)
                    .distance_sq(sink_pos)
                    .partial_cmp(&self.topology.position(b).distance_sq(sink_pos))
                    .expect("positions are finite")
                    .then(a.cmp(&b))
            })
            .expect("pools have at least one cell")
    }

    /// Processes a query issued at `sink` (§3.2): resolve → forward via
    /// splitters → collect matching events → return replies.
    ///
    /// # Errors
    ///
    /// [`PoolError::DimensionMismatch`] for wrong arity and
    /// [`PoolError::Routing`] on routing failure.
    pub fn query_from(&mut self, sink: NodeId, query: &RangeQuery) -> Result<QueryResult, PoolError> {
        if query.dims() != self.config.dims {
            return Err(PoolError::DimensionMismatch {
                expected: self.config.dims,
                got: query.dims(),
            });
        }
        let relevant = relevant_cells(&self.layout, query);
        let mut by_pool: HashMap<usize, Vec<CellCoord>> = HashMap::new();
        for (dim, cell) in &relevant {
            by_pool.entry(*dim).or_default().push(*cell);
        }

        let mut cost = QueryCost::default();
        let mut events = Vec::new();
        let mut pools_visited = 0usize;

        let mut dims: Vec<usize> = by_pool.keys().copied().collect();
        dims.sort_unstable();
        for dim in dims {
            let cells = &by_pool[&dim];
            pools_visited += 1;
            let splitter = self.splitter_of(dim, sink);
            let to_splitter = self.gpsr.route_to_node(&self.topology, sink, splitter)?;
            self.traffic.record_path(&to_splitter.path);
            cost.forward_messages += to_splitter.hops() as u64;

            let mut pool_matches = 0usize;
            for &cell in cells {
                let index_node = self.index_nodes[&cell];
                let to_cell = self.gpsr.route_to_node(&self.topology, splitter, index_node)?;
                self.traffic.record_path(&to_cell.path);
                cost.forward_messages += to_cell.hops() as u64;

                // The query also visits the cell's delegation chain, one hop
                // per link, since delegated events live off the index node.
                let chain = self.delegates_of(cell).to_vec();
                if !chain.is_empty() {
                    let mut walk = vec![index_node];
                    walk.extend_from_slice(&chain);
                    self.traffic.record_path(&walk);
                    cost.forward_messages += chain.len() as u64;
                }

                let matches: Vec<Event> = self
                    .store
                    .events_in(cell)
                    .iter()
                    .filter(|s| query.matches(&s.event))
                    .map(|s| s.event.clone())
                    .collect();
                if !matches.is_empty() {
                    // Reply: cell (and chain tail) back to the splitter.
                    let reply_hops = to_cell.hops() as u64 + chain.len() as u64;
                    let copies =
                        if self.config.aggregate_replies { 1 } else { matches.len() as u64 };
                    cost.reply_messages += reply_hops * copies;
                    let mut back = to_cell.path.clone();
                    back.reverse();
                    for _ in 0..copies {
                        self.traffic.record_path(&back);
                    }
                    pool_matches += matches.len();
                    events.extend(matches);
                }
            }
            if pool_matches > 0 {
                // Aggregated reply from the splitter to the sink.
                let copies = if self.config.aggregate_replies { 1 } else { pool_matches as u64 };
                cost.reply_messages += to_splitter.hops() as u64 * copies;
                let mut back = to_splitter.path.clone();
                back.reverse();
                for _ in 0..copies {
                    self.traffic.record_path(&back);
                }
            }
        }
        Ok(QueryResult { events, cost, relevant_cells: relevant.len(), pools_visited })
    }

    /// Runs an aggregate query (§3.2.3): same forwarding as
    /// [`PoolSystem::query_from`], but only the aggregate value travels
    /// back. Returns the aggregate (if defined) and the cost.
    ///
    /// # Errors
    ///
    /// Same as [`PoolSystem::query_from`].
    pub fn aggregate_from(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
        op: AggregateOp,
    ) -> Result<(Option<f64>, QueryCost), PoolError> {
        // Aggregates always travel as single messages, regardless of the
        // reply-aggregation ablation flag.
        let saved = self.config.aggregate_replies;
        self.config.aggregate_replies = true;
        let result = self.query_from(sink, query);
        self.config.aggregate_replies = saved;
        let result = result?;
        Ok((op.apply(&result.events), result.cost))
    }

    /// Brute-force ground truth: all stored events matching `query`,
    /// regardless of placement. Used by tests and correctness audits.
    pub fn brute_force_query(&self, query: &RangeQuery) -> Vec<Event> {
        let mut out = Vec::new();
        for (_, stored) in self.store.iter() {
            for s in stored {
                if query.matches(&s.event) {
                    out.push(s.event.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::deployment::Deployment;

    fn build_system(n: usize, seed: u64, config: PoolConfig) -> PoolSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(n, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return PoolSystem::build(topo, dep.field(), config).unwrap();
            }
            s += 1000;
        }
    }

    fn ev(v: &[f64]) -> Event {
        Event::new(v.to_vec()).unwrap()
    }

    #[test]
    fn insert_and_exact_query_roundtrip() {
        let mut pool = build_system(300, 1, PoolConfig::paper());
        pool.insert_from(NodeId(0), ev(&[0.62, 0.3, 0.11])).unwrap();
        pool.insert_from(NodeId(10), ev(&[0.9, 0.8, 0.7])).unwrap();
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.2, 0.4), (0.0, 0.5)]).unwrap();
        let result = pool.query_from(NodeId(50), &q).unwrap();
        assert_eq!(result.events, vec![ev(&[0.62, 0.3, 0.11])]);
        assert!(result.cost.total() > 0);
    }

    #[test]
    fn query_matches_brute_force_over_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut pool = build_system(300, 2, PoolConfig::paper());
        let mut rng = StdRng::seed_from_u64(77);
        let n = pool.topology().len();
        for _ in 0..300 {
            let src = NodeId(rng.gen_range(0..n as u32));
            let event = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            pool.insert_from(src, event).unwrap();
        }
        for trial in 0..20 {
            let mut bounds = Vec::new();
            for _ in 0..3 {
                if rng.gen_bool(0.3) {
                    bounds.push(None);
                } else {
                    let lo: f64 = rng.gen_range(0.0..0.8);
                    let hi = (lo + rng.gen_range(0.0..0.4)).min(1.0);
                    bounds.push(Some((lo, hi)));
                }
            }
            if bounds.iter().all(Option::is_none) {
                bounds[0] = Some((0.1, 0.9));
            }
            let q = RangeQuery::from_bounds(bounds).unwrap();
            let sink = NodeId(rng.gen_range(0..n as u32));
            let mut got = pool.query_from(sink, &q).unwrap().events;
            let mut want = pool.brute_force_query(&q);
            let key = |e: &Event| {
                e.values().iter().map(|v| (v * 1e9) as i64).collect::<Vec<_>>()
            };
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "trial {trial} query {q}");
        }
    }

    #[test]
    fn tied_events_stored_once_and_found() {
        let mut pool = build_system(300, 3, PoolConfig::paper());
        pool.insert_from(NodeId(5), ev(&[0.4, 0.4, 0.2])).unwrap();
        assert_eq!(pool.store().len(), 1);
        let q = RangeQuery::exact(vec![(0.3, 0.5), (0.3, 0.5), (0.1, 0.3)]).unwrap();
        let result = pool.query_from(NodeId(100), &q).unwrap();
        assert_eq!(result.events.len(), 1);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut pool = build_system(300, 4, PoolConfig::paper());
        let err = pool.insert_from(NodeId(0), ev(&[0.5, 0.5]));
        assert!(matches!(err, Err(PoolError::DimensionMismatch { expected: 3, got: 2 })));
        let q = RangeQuery::exact(vec![(0.0, 1.0)]).unwrap();
        assert!(matches!(
            pool.query_from(NodeId(0), &q),
            Err(PoolError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_store_query_returns_nothing_but_still_forwards() {
        let mut pool = build_system(300, 5, PoolConfig::paper());
        let q = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let result = pool.query_from(NodeId(0), &q).unwrap();
        assert!(result.events.is_empty());
        assert_eq!(result.cost.reply_messages, 0);
        assert!(result.cost.forward_messages > 0);
        assert_eq!(result.pools_visited, 3);
    }

    #[test]
    fn splitter_is_closest_pool_index_node() {
        let pool = build_system(300, 6, PoolConfig::paper());
        let sink = NodeId(17);
        let splitter = pool.splitter_of(0, sink);
        let sink_pos = pool.topology().position(sink);
        let sd = pool.topology().position(splitter).distance(sink_pos);
        for cell in pool.layout().pool(0).cells() {
            let node = pool.index_node_of(cell).unwrap();
            assert!(
                pool.topology().position(node).distance(sink_pos) >= sd - 1e-9,
                "cell {cell} index node {node} closer than splitter"
            );
        }
    }

    #[test]
    fn workload_sharing_bounds_node_load() {
        use crate::config::SharingPolicy;
        let config = PoolConfig::paper().with_sharing(SharingPolicy::new(5));
        let mut pool = build_system(300, 7, config);
        // A heavily skewed workload: everything lands in the same cell.
        for i in 0..40 {
            pool.insert_from(NodeId(i % 300), ev(&[0.951, 0.052, 0.013])).unwrap();
        }
        assert_eq!(pool.store().len(), 40);
        assert!(
            pool.store().max_node_load() <= 5,
            "load {} exceeds capacity",
            pool.store().max_node_load()
        );
        // The same skew without sharing concentrates everything.
        let mut unshared = build_system(300, 7, PoolConfig::paper());
        for i in 0..40 {
            unshared.insert_from(NodeId(i % 300), ev(&[0.951, 0.052, 0.013])).unwrap();
        }
        assert!(unshared.store().max_node_load() >= 40);
    }

    #[test]
    fn workload_sharing_loses_no_events() {
        use crate::config::SharingPolicy;
        let config = PoolConfig::paper().with_sharing(SharingPolicy::new(3));
        let mut pool = build_system(300, 8, config);
        for i in 0..30 {
            pool.insert_from(NodeId(i), ev(&[0.851, 0.052, 0.013])).unwrap();
        }
        let q = RangeQuery::exact(vec![(0.8, 0.9), (0.0, 0.1), (0.0, 0.1)]).unwrap();
        let result = pool.query_from(NodeId(200), &q).unwrap();
        assert_eq!(result.events.len(), 30, "delegated events must remain queryable");
    }

    #[test]
    fn unaggregated_replies_cost_more() {
        let mut agg = build_system(300, 9, PoolConfig::paper());
        let mut raw = build_system(300, 9, PoolConfig::paper().without_reply_aggregation());
        for i in 0..20 {
            let e = ev(&[0.72, 0.3 + 0.001 * i as f64, 0.1]);
            agg.insert_from(NodeId(i), e.clone()).unwrap();
            raw.insert_from(NodeId(i), e).unwrap();
        }
        let q = RangeQuery::exact(vec![(0.7, 0.75), (0.2, 0.4), (0.0, 0.2)]).unwrap();
        let a = agg.query_from(NodeId(250), &q).unwrap();
        let r = raw.query_from(NodeId(250), &q).unwrap();
        assert_eq!(a.events.len(), 20);
        assert_eq!(r.events.len(), 20);
        assert!(
            r.cost.reply_messages > a.cost.reply_messages,
            "unaggregated {} vs aggregated {}",
            r.cost.reply_messages,
            a.cost.reply_messages
        );
    }

    #[test]
    fn aggregates_compute_correctly() {
        let mut pool = build_system(300, 10, PoolConfig::paper());
        pool.insert_from(NodeId(0), ev(&[0.62, 0.3, 0.1])).unwrap();
        pool.insert_from(NodeId(1), ev(&[0.64, 0.35, 0.2])).unwrap();
        pool.insert_from(NodeId(2), ev(&[0.9, 0.1, 0.05])).unwrap();
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.0, 0.5), (0.0, 0.5)]).unwrap();
        let (count, _) = pool.aggregate_from(NodeId(9), &q, AggregateOp::Count).unwrap();
        assert_eq!(count, Some(2.0));
        let (sum, _) = pool.aggregate_from(NodeId(9), &q, AggregateOp::Sum(0)).unwrap();
        assert!((sum.unwrap() - 1.26).abs() < 1e-9);
        let (avg, _) = pool.aggregate_from(NodeId(9), &q, AggregateOp::Avg(1)).unwrap();
        assert!((avg.unwrap() - 0.325).abs() < 1e-9);
        let (min, _) = pool.aggregate_from(NodeId(9), &q, AggregateOp::Min(2)).unwrap();
        assert_eq!(min, Some(0.1));
        let (max, _) = pool.aggregate_from(NodeId(9), &q, AggregateOp::Max(2)).unwrap();
        assert_eq!(max, Some(0.2));
        // Aggregates over an empty result set.
        let empty = RangeQuery::exact(vec![(0.0, 0.01), (0.0, 0.01), (0.99, 1.0)]).unwrap();
        let (none, _) = pool.aggregate_from(NodeId(9), &empty, AggregateOp::Sum(0)).unwrap();
        assert_eq!(none, None);
        let (zero, _) = pool.aggregate_from(NodeId(9), &empty, AggregateOp::Count).unwrap();
        assert_eq!(zero, Some(0.0));
    }

    #[test]
    fn monitors_notify_only_matching_insertions() {
        let mut pool = build_system(300, 20, PoolConfig::paper());
        let sink = NodeId(7);
        let q = RangeQuery::exact(vec![(0.6, 0.7), (0.0, 0.5), (0.0, 0.5)]).unwrap();
        let (id, install_cost) = pool.install_monitor(sink, q).unwrap();
        assert!(install_cost.forward_messages > 0);
        assert_eq!(pool.monitors().len(), 1);

        // A matching insertion notifies the sink.
        let r = pool.insert_from(NodeId(100), ev(&[0.65, 0.3, 0.2])).unwrap();
        assert_eq!(r.notifications.len(), 1);
        assert_eq!(r.notifications[0].sink, sink);
        assert_eq!(r.notifications[0].monitor, id);

        // A non-matching insertion does not.
        let r = pool.insert_from(NodeId(100), ev(&[0.95, 0.3, 0.2])).unwrap();
        assert!(r.notifications.is_empty());

        // After removal, nothing fires.
        let removed = pool.remove_monitor(id).unwrap();
        assert!(removed.is_some());
        let r = pool.insert_from(NodeId(100), ev(&[0.66, 0.3, 0.2])).unwrap();
        assert!(r.notifications.is_empty());
        assert!(pool.remove_monitor(id).unwrap().is_none());
    }

    #[test]
    fn monitor_catches_every_matching_event_in_a_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut pool = build_system(300, 21, PoolConfig::paper());
        let q = RangeQuery::from_bounds(vec![Some((0.8, 1.0)), None, None]).unwrap();
        let (_, _) = pool.install_monitor(NodeId(0), q.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut expected = 0usize;
        let mut fired = 0usize;
        for _ in 0..150 {
            let event = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            if q.matches(&event) {
                expected += 1;
            }
            let r = pool.insert_from(NodeId(rng.gen_range(0..300)), event).unwrap();
            fired += r.notifications.len();
        }
        assert!(expected > 0, "workload should contain matches");
        assert_eq!(fired, expected, "every matching insertion must notify exactly once");
    }

    #[test]
    fn traffic_ledger_accumulates() {
        let mut pool = build_system(300, 12, PoolConfig::paper());
        let r = pool.insert_from(NodeId(0), ev(&[0.5, 0.4, 0.3])).unwrap();
        assert_eq!(pool.traffic().total_messages(), r.messages);
        let q = RangeQuery::exact(vec![(0.4, 0.6), (0.3, 0.5), (0.2, 0.4)]).unwrap();
        let res = pool.query_from(NodeId(1), &q).unwrap();
        assert_eq!(pool.traffic().total_messages(), r.messages + res.cost.total());
    }
}
