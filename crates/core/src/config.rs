//! System configuration.

use crate::error::PoolError;
use crate::grid::CellCoord;
use pool_gpsr::Planarization;
use pool_transport::{FaultPlan, LossyConfig, OpRetryPolicy, RecoveryConfig, TransportKind};

/// Workload-sharing policy (§4.2): when an index node's stored-event count
/// reaches `capacity`, subsequent events for its cells are delegated to a
/// nearby node, chaining as needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingPolicy {
    /// Maximum events a node stores before delegating.
    pub capacity: usize,
}

impl SharingPolicy {
    /// Creates a policy with the given per-node capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sharing capacity must be positive");
        SharingPolicy { capacity }
    }
}

/// Configuration for a [`crate::system::PoolSystem`].
///
/// Defaults mirror the paper's §5.1 settings: `α = 5` m cells, pool side
/// `l = 10`, `k = 3` dimensions, Gabriel planarization, no workload sharing.
///
/// # Examples
///
/// ```
/// use pool_core::config::PoolConfig;
///
/// let config = PoolConfig::paper()
///     .with_dims(4)
///     .with_pool_side(8)
///     .with_seed(7);
/// assert_eq!(config.dims, 4);
/// assert_eq!(config.pool_side, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Cell size `α` in meters.
    pub alpha: f64,
    /// Pool side length `l` in cells.
    pub pool_side: u32,
    /// Event dimensionality `k` (= number of pools).
    pub dims: usize,
    /// Seed for random pivot placement.
    pub seed: u64,
    /// Planarization used by the GPSR substrate.
    pub planarization: Planarization,
    /// Routing substrate implementation (plain GPSR, or the memoizing
    /// route cache — identical message counts either way).
    pub transport: TransportKind,
    /// Optional workload sharing (§4.2).
    pub sharing: Option<SharingPolicy>,
    /// Explicit pivot cells (overrides random placement when set).
    pub pivots: Option<Vec<CellCoord>>,
    /// Whether query replies are aggregated at splitters (§3.2.3). When
    /// false, every matching event is charged as its own reply message per
    /// hop — the unaggregated ablation.
    pub aggregate_replies: bool,
    /// Whether every event keeps one backup copy at a neighbor of its
    /// index node, enabling recovery after index-node failure (+1 message
    /// per insertion).
    pub replicate: bool,
    /// Optional lossy link layer: when set, the routing substrate is
    /// wrapped in a [`pool_transport::LossyTransport`] so every hop can be
    /// dropped and retried (bounded ARQ). `None` keeps the paper's
    /// loss-free radio.
    pub lossy: Option<LossyConfig>,
    /// Optional structured fault injection: when set, the substrate is
    /// wrapped in a [`pool_transport::FaultyTransport`] driving the plan's
    /// crashes, pauses, partitions, burst loss, and asymmetric links
    /// against virtual time. Implies a lossy substrate (a perfect link is
    /// substituted when [`PoolConfig::lossy`] is `None`).
    pub faults: Option<FaultPlan>,
    /// Optional adaptive recovery on the lossy/faulty substrate: EWMA link
    /// estimation, exponential backoff priced on the virtual clock, and a
    /// passive failure detector feeding detour routing and targeted route
    /// eviction.
    pub recovery: Option<RecoveryConfig>,
    /// Optional bounded idempotent retry at the operation level: failed
    /// query legs are re-delivered (optionally via a detour route around
    /// the failed hop). Completeness can only improve; every attempt is
    /// charged to the ledger.
    pub op_retry: Option<OpRetryPolicy>,
}

impl PoolConfig {
    /// The paper's §5.1 parameters.
    pub fn paper() -> Self {
        PoolConfig {
            alpha: 5.0,
            pool_side: 10,
            dims: 3,
            seed: 0,
            planarization: Planarization::Gabriel,
            transport: TransportKind::Gpsr,
            sharing: None,
            pivots: None,
            aggregate_replies: true,
            replicate: false,
            lossy: None,
            faults: None,
            recovery: None,
            op_retry: None,
        }
    }

    /// Sets the cell size `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the pool side length `l`.
    pub fn with_pool_side(mut self, side: u32) -> Self {
        self.pool_side = side;
        self
    }

    /// Sets the event dimensionality `k`.
    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = dims;
        self
    }

    /// Sets the pivot-placement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the planarization method.
    pub fn with_planarization(mut self, p: Planarization) -> Self {
        self.planarization = p;
        self
    }

    /// Selects the routing-substrate implementation.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Enables workload sharing.
    pub fn with_sharing(mut self, policy: SharingPolicy) -> Self {
        self.sharing = Some(policy);
        self
    }

    /// Pins the pool pivots (e.g. to reproduce Figure 2).
    pub fn with_pivots(mut self, pivots: Vec<CellCoord>) -> Self {
        self.pivots = Some(pivots);
        self
    }

    /// Disables reply aggregation (ablation).
    pub fn without_reply_aggregation(mut self) -> Self {
        self.aggregate_replies = false;
        self
    }

    /// Enables one-backup-copy replication for failure recovery.
    pub fn with_replication(mut self) -> Self {
        self.replicate = true;
        self
    }

    /// Runs the system over a lossy link layer (per-hop drops + bounded
    /// ARQ) instead of the paper's loss-free radio.
    pub fn with_lossy(mut self, lossy: LossyConfig) -> Self {
        self.lossy = Some(lossy);
        self
    }

    /// Injects the structured faults of `plan` against virtual time.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables adaptive recovery (EWMA estimation, priced backoff, passive
    /// failure detection) on the lossy/faulty substrate.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Enables bounded idempotent operation-level retry for query legs.
    pub fn with_op_retry(mut self, policy: OpRetryPolicy) -> Self {
        self.op_retry = Some(policy);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::InvalidConfig`] when a parameter is out of
    /// range or the pivot count disagrees with `dims`.
    pub fn validate(&self) -> Result<(), PoolError> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(PoolError::InvalidConfig { reason: format!("α = {}", self.alpha) });
        }
        if self.pool_side == 0 {
            return Err(PoolError::InvalidConfig { reason: "pool side l = 0".into() });
        }
        if self.dims < 2 {
            return Err(PoolError::InvalidConfig {
                reason: format!("k = {} (pool placement needs k ≥ 2)", self.dims),
            });
        }
        if let Some(pivots) = &self.pivots {
            if pivots.len() != self.dims {
                return Err(PoolError::InvalidConfig {
                    reason: format!("{} pivots for k = {}", pivots.len(), self.dims),
                });
            }
        }
        Ok(())
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = PoolConfig::paper();
        assert_eq!(c.alpha, 5.0);
        assert_eq!(c.pool_side, 10);
        assert_eq!(c.dims, 3);
        assert!(c.aggregate_replies);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = PoolConfig::paper().with_alpha(2.5).with_dims(5).with_seed(9);
        assert_eq!(c.alpha, 2.5);
        assert_eq!(c.dims, 5);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(PoolConfig::paper().with_alpha(-1.0).validate().is_err());
        assert!(PoolConfig::paper().with_pool_side(0).validate().is_err());
        assert!(PoolConfig::paper().with_dims(1).validate().is_err());
        let mismatched = PoolConfig::paper().with_pivots(vec![CellCoord::new(0, 0)]);
        assert!(mismatched.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_policy_panics() {
        let _ = SharingPolicy::new(0);
    }
}
